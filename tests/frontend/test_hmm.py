"""Tests for phone HMM sets, alignments and emission models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.am.gmm import DiagonalGMM
from repro.frontend.am.hmm import (
    GMMEmission,
    NeuralEmission,
    PhoneHMMSet,
    uniform_state_alignment,
)
from repro.frontend.am.mlp import MLPConfig


class TestUniformStateAlignment:
    def test_two_state_split(self):
        labels = uniform_state_alignment(
            np.array([0, 1]), np.array([4, 2]), states_per_phone=2
        )
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 2, 3])

    def test_short_segment_uses_early_states(self):
        labels = uniform_state_alignment(
            np.array([1]), np.array([1]), states_per_phone=3
        )
        np.testing.assert_array_equal(labels, [3])  # phone 1, state 0

    def test_three_state_balanced(self):
        labels = uniform_state_alignment(
            np.array([0]), np.array([9]), states_per_phone=3
        )
        counts = np.bincount(labels, minlength=3)
        assert tuple(counts) == (3, 3, 3)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            uniform_state_alignment(np.array([0]), np.array([1, 2]), 2)


def make_emission(n_states: int, rng) -> GMMEmission:
    gmms = [
        DiagonalGMM.from_parameters(
            means=rng.normal(size=(1, 3)) * 3,
            variances=np.ones((1, 3)),
            weights=np.array([1.0]),
        )
        for _ in range(n_states)
    ]
    return GMMEmission(gmms)


class TestEmissions:
    def test_gmm_emission_shape(self, rng):
        em = make_emission(6, rng)
        out = em.frame_log_likelihood(rng.normal(size=(7, 3)))
        assert out.shape == (7, 6)

    def test_gmm_emission_train_separates_states(self, rng):
        # Two states at distinct means.
        frames = np.vstack(
            [rng.normal(0, 1, (100, 2)), rng.normal(8, 1, (100, 2))]
        )
        labels = np.repeat([0, 1], 100)
        em = GMMEmission.train(frames, labels, 2, n_components=2, seed=0)
        ll = em.frame_log_likelihood(np.array([[0.0, 0.0], [8.0, 8.0]]))
        assert ll[0, 0] > ll[0, 1]
        assert ll[1, 1] > ll[1, 0]

    def test_gmm_emission_handles_empty_state(self, rng):
        frames = rng.normal(size=(50, 2))
        labels = np.zeros(50, dtype=int)
        em = GMMEmission.train(frames, labels, 3, seed=0)  # states 1,2 empty
        out = em.frame_log_likelihood(frames[:5])
        assert np.all(np.isfinite(out))

    def test_neural_emission_train_and_score(self, rng):
        frames = np.vstack(
            [rng.normal(0, 1, (120, 3)), rng.normal(6, 1, (120, 3))]
        )
        labels = np.repeat([0, 1], 120)
        em = NeuralEmission.train(
            frames, labels, 2,
            config=MLPConfig(hidden_sizes=(12,), n_epochs=4), seed=0,
        )
        ll = em.frame_log_likelihood(np.array([[0.0] * 3, [6.0] * 3]))
        assert ll[0, 0] > ll[0, 1]
        assert ll[1, 1] > ll[1, 0]

    def test_neural_emission_covers_all_states(self, rng):
        # The tail state never occurs in training data.
        frames = rng.normal(size=(60, 3))
        labels = np.zeros(60, dtype=int)
        em = NeuralEmission.train(
            frames, labels, 4,
            config=MLPConfig(hidden_sizes=(8,), n_epochs=2), seed=0,
        )
        assert em.n_states == 4
        assert em.frame_log_likelihood(frames[:3]).shape == (3, 4)


class TestPhoneHMMSet:
    def test_state_space_helpers(self, rng):
        hmms = PhoneHMMSet(4, 2, make_emission(8, rng))
        np.testing.assert_array_equal(hmms.entry_states(), [0, 2, 4, 6])
        np.testing.assert_array_equal(hmms.exit_states(), [1, 3, 5, 7])
        np.testing.assert_array_equal(
            hmms.state_phone(), [0, 0, 1, 1, 2, 2, 3, 3]
        )

    def test_initial_log_probs(self, rng):
        hmms = PhoneHMMSet(4, 2, make_emission(8, rng))
        init = hmms.initial_log_probs()
        probs = np.exp(init[np.isfinite(init)])
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(np.isneginf(init[1::2]))  # non-entry states

    def test_transition_blocks_normalised(self, rng):
        hmms = PhoneHMMSet(3, 2, make_emission(6, rng), self_loop=0.6)
        log_self, log_leave, cross = hmms.transition_blocks()
        assert np.exp(log_self) == pytest.approx(0.6)
        # Leaving mass spread over the bigram must total 1 - self_loop.
        total_leave = np.exp(cross).sum(axis=1)
        np.testing.assert_allclose(total_leave, 0.4, atol=1e-9)

    def test_emission_size_checked(self, rng):
        with pytest.raises(ValueError, match="emission"):
            PhoneHMMSet(4, 3, make_emission(8, rng))

    def test_bigram_shape_checked(self, rng):
        with pytest.raises(ValueError, match="bigram"):
            PhoneHMMSet(
                4, 2, make_emission(8, rng),
                phone_log_bigram=np.zeros((3, 3)),
            )
