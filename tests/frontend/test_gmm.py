"""Tests for the diagonal GMM."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import norm

from repro.frontend.am.gmm import DiagonalGMM


def two_cluster_data(rng, n=400, sep=6.0):
    a = rng.normal(0.0, 1.0, size=(n // 2, 2))
    b = rng.normal(sep, 1.0, size=(n // 2, 2))
    return np.vstack([a, b])


class TestScoring:
    def test_single_gaussian_matches_scipy(self, rng):
        gmm = DiagonalGMM.from_parameters(
            means=np.array([[1.0, -2.0]]),
            variances=np.array([[4.0, 0.25]]),
            weights=np.array([1.0]),
        )
        x = rng.normal(size=(10, 2))
        expected = norm.logpdf(x[:, 0], 1.0, 2.0) + norm.logpdf(
            x[:, 1], -2.0, 0.5
        )
        np.testing.assert_allclose(gmm.log_likelihood(x), expected, atol=1e-9)

    def test_mixture_is_logsumexp_of_components(self, rng):
        gmm = DiagonalGMM.from_parameters(
            means=np.array([[0.0], [5.0]]),
            variances=np.array([[1.0], [1.0]]),
            weights=np.array([0.3, 0.7]),
        )
        x = rng.normal(size=(20, 1))
        comp = gmm.component_log_likelihood(x) + gmm.log_weights
        expected = np.logaddexp(comp[:, 0], comp[:, 1])
        np.testing.assert_allclose(gmm.log_likelihood(x), expected, atol=1e-9)

    def test_responsibilities_sum_to_one(self, rng):
        gmm = DiagonalGMM(3).fit(rng.normal(size=(100, 2)), rng=0)
        post = gmm.responsibilities(rng.normal(size=(15, 2)))
        np.testing.assert_allclose(post.sum(axis=1), 1.0, atol=1e-12)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DiagonalGMM(2).log_likelihood(np.zeros((1, 2)))


class TestFitting:
    def test_em_finds_two_clusters(self, rng):
        x = two_cluster_data(rng)
        gmm = DiagonalGMM(2).fit(x, n_iter=25, rng=0)
        means = np.sort(gmm.means[:, 0])
        assert means[0] == pytest.approx(0.0, abs=0.5)
        assert means[1] == pytest.approx(6.0, abs=0.5)
        np.testing.assert_allclose(np.exp(gmm.log_weights).sum(), 1.0)

    def test_em_monotone_likelihood(self, rng):
        x = two_cluster_data(rng)
        lls = []
        for n_iter in (1, 5, 20):
            gmm = DiagonalGMM(3).fit(x, n_iter=n_iter, rng=0)
            lls.append(gmm.log_likelihood(x).mean())
        assert lls[0] <= lls[1] + 1e-9
        assert lls[1] <= lls[2] + 1e-9

    def test_weighted_fit_respects_weights(self, rng):
        x = two_cluster_data(rng)
        # Zero out the second cluster: the model must collapse onto the first.
        w = np.concatenate([np.ones(200), np.zeros(200)])
        gmm = DiagonalGMM(1, var_floor=1e-3).fit(x, weights=w, rng=0)
        assert gmm.means[0, 0] == pytest.approx(0.0, abs=0.3)

    def test_variance_floor(self, rng):
        x = np.zeros((50, 2))  # degenerate data
        gmm = DiagonalGMM(1, var_floor=1e-2).fit(x, n_iter=3, rng=0)
        assert np.all(gmm.variances >= 1e-2)

    def test_too_few_frames_rejected(self, rng):
        with pytest.raises(ValueError, match="frames"):
            DiagonalGMM(8).fit(rng.normal(size=(4, 2)), rng=0)

    def test_bad_weights_rejected(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            DiagonalGMM(2).fit(x, weights=-np.ones(10), rng=0)

    def test_deterministic_given_seed(self, rng):
        x = two_cluster_data(rng)
        a = DiagonalGMM(2).fit(x, rng=3)
        b = DiagonalGMM(2).fit(x, rng=3)
        np.testing.assert_allclose(a.means, b.means)


class TestFromParameters:
    def test_roundtrip(self):
        gmm = DiagonalGMM.from_parameters(
            means=np.array([[0.0, 1.0]]),
            variances=np.array([[1.0, 2.0]]),
            weights=np.array([1.0]),
        )
        assert gmm.n_components == 1

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            DiagonalGMM.from_parameters(
                means=np.zeros((2, 3)),
                variances=np.zeros((1, 3)),
                weights=np.array([0.5, 0.5]),
            )

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            DiagonalGMM.from_parameters(
                means=np.zeros((2, 2)),
                variances=np.ones((2, 2)),
                weights=np.array([0.5, 0.6]),
            )
