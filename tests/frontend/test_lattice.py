"""Tests for lattices and posterior sausages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.phoneset import PhoneSet
from repro.frontend.lattice import Lattice, Sausage, SausageSlot

PS = PhoneSet("test", tuple("abcdef"))


def diamond_lattice() -> Lattice:
    """start -0-> mid -..-> end with two parallel paths."""
    # Nodes: 0 start, 1 mid, 2 end.
    return Lattice(
        n_nodes=3,
        starts=np.array([0, 0, 1, 1]),
        ends=np.array([1, 1, 2, 2]),
        phones=np.array([0, 1, 2, 3]),
        log_weights=np.log(np.array([0.7, 0.3, 0.4, 0.6])),
        phone_set=PS,
    )


class TestLattice:
    def test_forward_backward_consistent(self):
        lat = diamond_lattice()
        # Total weight: (0.7 + 0.3) * (0.4 + 0.6) = 1.0
        assert lat.total_log_weight() == pytest.approx(0.0, abs=1e-9)
        # alpha at end equals beta at start.
        assert lat.forward()[-1] == pytest.approx(lat.backward()[0], abs=1e-9)

    def test_edge_posteriors_sum_per_cut(self):
        lat = diamond_lattice()
        post = lat.edge_posteriors()
        # Edges 0,1 form a cut; so do 2,3.
        assert post[0] + post[1] == pytest.approx(1.0)
        assert post[2] + post[3] == pytest.approx(1.0)
        assert post[0] == pytest.approx(0.7)
        assert post[3] == pytest.approx(0.6)

    def test_best_path(self):
        lat = diamond_lattice()
        np.testing.assert_array_equal(lat.best_path(), [0, 3])

    def test_unnormalised_weights(self):
        lat = Lattice(
            n_nodes=2,
            starts=np.array([0, 0]),
            ends=np.array([1, 1]),
            phones=np.array([0, 1]),
            log_weights=np.log(np.array([2.0, 6.0])),
            phone_set=PS,
        )
        post = lat.edge_posteriors()
        np.testing.assert_allclose(post, [0.25, 0.75])

    def test_validation(self):
        with pytest.raises(ValueError, match="forward"):
            Lattice(
                n_nodes=2,
                starts=np.array([1]),
                ends=np.array([0]),
                phones=np.array([0]),
                log_weights=np.array([0.0]),
                phone_set=PS,
            )
        with pytest.raises(ValueError, match="phone id"):
            Lattice(
                n_nodes=2,
                starts=np.array([0]),
                ends=np.array([1]),
                phones=np.array([99]),
                log_weights=np.array([0.0]),
                phone_set=PS,
            )

    def test_unreachable_end_best_path_raises(self):
        lat = Lattice(
            n_nodes=3,
            starts=np.array([0]),
            ends=np.array([1]),
            phones=np.array([0]),
            log_weights=np.array([0.0]),
            phone_set=PS,
        )
        with pytest.raises(ValueError, match="unreachable"):
            lat.best_path()


class TestSausageSlot:
    def test_validation(self):
        with pytest.raises(ValueError):
            SausageSlot(np.array([0, 0]), np.array([0.5, 0.5]))  # dup phones
        with pytest.raises(ValueError):
            SausageSlot(np.array([0, 1]), np.array([0.5, 0.6]))  # bad sum
        with pytest.raises(ValueError):
            SausageSlot(np.array([]), np.array([]))  # empty

    def test_top_phone(self):
        slot = SausageSlot(np.array([2, 4]), np.array([0.3, 0.7]))
        assert slot.top_phone == 4


@st.composite
def random_sausages(draw):
    n_slots = draw(st.integers(1, 6))
    slots = []
    for _ in range(n_slots):
        k = draw(st.integers(1, 3))
        phones = draw(
            st.lists(st.integers(0, 5), min_size=k, max_size=k, unique=True)
        )
        raw = draw(
            st.lists(
                st.floats(0.05, 1.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
        probs = np.array(raw) / np.sum(raw)
        order = np.argsort(phones)
        slots.append(
            SausageSlot(np.array(sorted(phones)), probs[order])
        )
    return Sausage(slots, PS)


class TestSausage:
    def test_best_phones(self):
        sausage = Sausage(
            [
                SausageSlot(np.array([0, 1]), np.array([0.9, 0.1])),
                SausageSlot(np.array([2]), np.array([1.0])),
            ],
            PS,
        )
        np.testing.assert_array_equal(sausage.best_phones(), [0, 2])

    def test_from_hard_sequence(self):
        sausage = Sausage.from_hard_sequence(np.array([1, 3, 2]), PS)
        assert len(sausage) == 3
        np.testing.assert_array_equal(sausage.best_phones(), [1, 3, 2])

    @given(random_sausages())
    @settings(max_examples=40, deadline=None)
    def test_to_lattice_preserves_posteriors(self, sausage: Sausage):
        lat = sausage.to_lattice()
        post = lat.edge_posteriors()
        # Edge posteriors must reproduce the slot probabilities.
        offset = 0
        for slot in sausage.slots:
            np.testing.assert_allclose(
                post[offset : offset + slot.phones.size], slot.probs, atol=1e-9
            )
            offset += slot.phones.size

    @given(random_sausages())
    @settings(max_examples=40, deadline=None)
    def test_lattice_best_path_matches_top_phones(self, sausage: Sausage):
        # With independent slots, the best path picks each slot's argmax.
        # Ties may break either way — and the lattice DP compares
        # *accumulated log* scores, where distinct probs can still collide
        # after rounding — so only check when the argmax is unique in the
        # score domain the DP actually sees.
        unique_argmax = True
        best = 0.0
        for slot in sausage.slots:
            cand = best + np.log(np.maximum(slot.probs, 1e-300))
            top = float(cand.max())
            if np.sum(cand == top) != 1:
                unique_argmax = False
            best = top
        if unique_argmax:
            np.testing.assert_array_equal(
                sausage.to_lattice().best_path(), sausage.best_phones()
            )

    def test_out_of_range_phone_rejected(self):
        with pytest.raises(ValueError):
            Sausage(
                [SausageSlot(np.array([len(PS)]), np.array([1.0]))], PS
            )


class TestPinchLattice:
    def test_inverse_of_to_lattice(self):
        from repro.frontend.lattice import pinch_lattice

        sausage = Sausage(
            [
                SausageSlot(np.array([0, 2]), np.array([0.3, 0.7])),
                SausageSlot(np.array([1]), np.array([1.0])),
                SausageSlot(np.array([3, 4]), np.array([0.5, 0.5])),
            ],
            PS,
        )
        back = pinch_lattice(sausage.to_lattice())
        assert len(back) == len(sausage)
        for a, b in zip(back.slots, sausage.slots):
            np.testing.assert_array_equal(a.phones, b.phones)
            np.testing.assert_allclose(a.probs, b.probs, atol=1e-9)

    def test_branch_length_mismatch(self):
        from repro.frontend.lattice import pinch_lattice

        # Path A: 0 -a-> 1 -b-> 3 (prob .6); Path B: 0 -c-> 3 (prob .4).
        lat = Lattice(
            n_nodes=4,
            starts=np.array([0, 1, 0]),
            ends=np.array([1, 3, 3]),
            phones=np.array([0, 1, 2]),
            log_weights=np.log(np.array([0.6, 1.0, 0.4])),
            phone_set=PS,
        )
        sausage = pinch_lattice(lat)
        # Slot 0 holds 'a' (0.6) and 'c' (0.4); slot 1 holds 'b' alone.
        np.testing.assert_array_equal(sausage.slots[0].phones, [0, 2])
        np.testing.assert_allclose(sausage.slots[0].probs, [0.6, 0.4])
        np.testing.assert_array_equal(sausage.slots[1].phones, [1])

    def test_top_k_applied(self):
        from repro.frontend.lattice import pinch_lattice

        sausage = Sausage(
            [
                SausageSlot(
                    np.array([0, 1, 2, 3]),
                    np.array([0.4, 0.3, 0.2, 0.1]),
                )
            ],
            PS,
        )
        pinched = pinch_lattice(sausage.to_lattice(), top_k=2)
        assert pinched.slots[0].phones.size == 2

    def test_empty_lattice(self):
        from repro.frontend.lattice import pinch_lattice

        lat = Lattice(
            n_nodes=2,
            starts=np.array([], dtype=np.int64),
            ends=np.array([], dtype=np.int64),
            phones=np.array([], dtype=np.int64),
            log_weights=np.array([]),
            phone_set=PS,
        )
        assert len(pinch_lattice(lat)) == 0

    def test_counts_preserved_through_pinch_for_sausages(self):
        """Expected unigram counts survive a to_lattice -> pinch roundtrip."""
        from repro.frontend.lattice import pinch_lattice
        from repro.ngram.counts import expected_counts_sausage

        sausage = Sausage(
            [
                SausageSlot(np.array([0, 1]), np.array([0.25, 0.75])),
                SausageSlot(np.array([2, 3]), np.array([0.5, 0.5])),
            ],
            PS,
        )
        back = pinch_lattice(sausage.to_lattice())
        a = expected_counts_sausage(sausage, 1)
        b = expected_counts_sausage(back, 1)
        assert set(a) == set(b)
        for key in a:
            assert a[key] == pytest.approx(b[key], abs=1e-9)


class TestPruneProperties:
    """Top-k truncation invariants (paper Eq. 2 depends on slot mass)."""

    @given(random_sausages(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_pruned_slots_are_renormalized(self, sausage, top_k):
        pruned = sausage.prune(top_k=top_k)
        assert len(pruned) == len(sausage)
        for before, after in zip(sausage.slots, pruned.slots):
            assert after.phones.size <= top_k
            assert after.probs.sum() == pytest.approx(1.0, rel=1e-12)
            # Slot winner always survives truncation.
            assert before.top_phone in after.phones
            # Phones stay sorted unique (SausageSlot contract).
            assert np.all(np.diff(after.phones) > 0) or after.phones.size == 1

    @given(random_sausages())
    @settings(max_examples=60, deadline=None)
    def test_counts_invariant_when_nothing_pruned(self, sausage):
        from repro.ngram.counts import expected_counts_sausage

        # k >= inventory drops nothing, so slots — and the expected
        # n-gram counts built from them — must be *bitwise* unchanged
        # (renormalising by a sum that is 1±ulp used to perturb them).
        pruned = sausage.prune(top_k=len(PS))
        for before, after in zip(sausage.slots, pruned.slots):
            np.testing.assert_array_equal(before.phones, after.phones)
            np.testing.assert_array_equal(before.probs, after.probs)
        for order in (1, 2, 3):
            assert expected_counts_sausage(sausage, order) == (
                expected_counts_sausage(pruned, order)
            )

    @given(random_sausages(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_count_mass_consistent_after_truncation(self, sausage, top_k):
        from repro.ngram.counts import expected_counts_sausage

        # Each slot's posterior is a distribution, so unigram count mass
        # equals the slot count — before and after truncation.
        pruned = sausage.prune(top_k=top_k)
        mass = sum(expected_counts_sausage(pruned, 1).values())
        assert mass == pytest.approx(len(sausage), rel=1e-12)

    @given(random_sausages())
    @settings(max_examples=30, deadline=None)
    def test_noop_prune_returns_equal_slots(self, sausage):
        pruned = sausage.prune()  # no top_k, min_prob=0: prunes nothing
        for before, after in zip(sausage.slots, pruned.slots):
            np.testing.assert_array_equal(before.probs, after.probs)
