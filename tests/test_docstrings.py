"""Documentation coverage: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that public modules,
classes, functions and methods are documented — the API-documentation
deliverable, enforced.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing __main__ would run the CLI
        yield importlib.import_module(info.name)


def _public_members(obj):
    for name, member in inspect.getmembers(obj):
        if name.startswith("_"):
            continue
        yield name, member


def test_all_modules_documented():
    undocumented = [
        mod.__name__ for mod in _iter_modules() if not inspect.getdoc(mod)
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_all_public_classes_and_functions_documented():
    missing: list[str] = []
    for mod in _iter_modules():
        for name, member in _public_members(mod):
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", "").startswith("repro"):
                    if not inspect.getdoc(member):
                        missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_all_public_methods_documented():
    missing: list[str] = []
    for mod in _iter_modules():
        for cls_name, cls in _public_members(mod):
            if not inspect.isclass(cls):
                continue
            if not getattr(cls, "__module__", "").startswith("repro"):
                continue
            for name, method in inspect.getmembers(cls):
                if name.startswith("_") or not callable(method):
                    continue
                qual = getattr(method, "__qualname__", "")
                # Only methods defined by this class (not inherited ones).
                if not qual.startswith(cls.__name__ + "."):
                    continue
                if getattr(method, "__module__", "").startswith(
                    "repro"
                ) and not inspect.getdoc(method):
                    missing.append(f"{mod.__name__}.{cls.__name__}.{name}")
    assert not missing, f"undocumented methods: {sorted(set(missing))}"
