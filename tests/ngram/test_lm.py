"""Tests for the Witten–Bell n-gram LM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ngram.lm import WittenBellLM


@pytest.fixture()
def alternating_lm() -> WittenBellLM:
    return WittenBellLM(3, order=2).fit([np.array([0, 1] * 30)])


class TestProbabilities:
    def test_distribution_sums_to_one(self, alternating_lm):
        for ctx in ((), (0,), (1,), (2,)):
            total = sum(alternating_lm.prob(ctx, p) for p in range(3))
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_learned_pattern(self, alternating_lm):
        assert alternating_lm.prob((0,), 1) > 0.8
        assert alternating_lm.prob((1,), 0) > 0.8

    def test_unseen_context_backs_off(self, alternating_lm):
        # Phone 2 never occurs: P(·|2) must back off to the unigram.
        p_backoff = alternating_lm.prob((2,), 0)
        uni = alternating_lm.prob((), 0)
        assert p_backoff == pytest.approx(uni, abs=1e-9)

    def test_unseen_phone_nonzero(self, alternating_lm):
        assert alternating_lm.prob((), 2) > 0.0

    def test_trigram_backoff_chain(self):
        lm = WittenBellLM(4, order=3).fit([np.array([0, 1, 2, 0, 1, 2])])
        assert lm.prob((0, 1), 2) > lm.prob((0, 1), 3)
        total = sum(lm.prob((0, 1), p) for p in range(4))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_long_context_truncated(self, alternating_lm):
        assert alternating_lm.prob((2, 2, 2, 0), 1) == pytest.approx(
            alternating_lm.prob((0,), 1)
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WittenBellLM(3).prob((), 0)

    def test_out_of_range_phone(self, alternating_lm):
        with pytest.raises(ValueError):
            alternating_lm.prob((), 7)


class TestSequenceScoring:
    def test_perplexity_lower_on_matching_data(self, alternating_lm):
        matching = np.array([0, 1] * 10)
        shuffled = np.array([1, 1, 0, 0] * 5)
        assert alternating_lm.perplexity(matching) < alternating_lm.perplexity(
            shuffled
        )

    def test_perplexity_bounds(self, alternating_lm):
        ppl = alternating_lm.perplexity(np.array([0, 1, 0, 1]))
        assert 1.0 <= ppl <= 3.0

    def test_empty_perplexity_raises(self, alternating_lm):
        with pytest.raises(ValueError):
            alternating_lm.perplexity(np.array([]))

    def test_log_prob_additivity(self, alternating_lm):
        seq = np.array([0, 1, 0])
        expected = (
            np.log(alternating_lm.prob((), 0))
            + np.log(alternating_lm.prob((0,), 1))
            + np.log(alternating_lm.prob((0, 1)[-1:], 0))
        )
        assert alternating_lm.log_prob_sequence(seq) == pytest.approx(
            expected, abs=1e-9
        )


class TestBigramMatrixAndSampling:
    def test_bigram_matrix_rows_stochastic(self, alternating_lm):
        lb = alternating_lm.log_bigram_matrix()
        np.testing.assert_allclose(np.exp(lb).sum(axis=1), 1.0, atol=1e-9)

    def test_bigram_matrix_needs_order2(self):
        lm = WittenBellLM(3, order=1).fit([np.array([0, 1, 2])])
        with pytest.raises(ValueError):
            lm.log_bigram_matrix()

    def test_sample_respects_model(self, alternating_lm):
        seq = alternating_lm.sample(200, rng=0)
        assert seq.size == 200
        # Alternation dominates the chain, so most transitions flip.
        flips = np.mean(seq[1:] != seq[:-1])
        assert flips > 0.7

    def test_sample_deterministic(self, alternating_lm):
        np.testing.assert_array_equal(
            alternating_lm.sample(20, rng=4), alternating_lm.sample(20, rng=4)
        )
