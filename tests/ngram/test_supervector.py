"""Tests for supervector extraction and TFLLR scaling (Eqs. 3, 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.phoneset import PhoneSet
from repro.frontend.lattice import Sausage
from repro.ngram.supervector import SupervectorExtractor, TFLLRScaler
from repro.utils.sparse import SparseMatrix

PS = PhoneSet("t", tuple("abcd"))


def hard(seq):
    return Sausage.from_hard_sequence(np.array(seq), PS)


class TestSupervectorExtractor:
    def test_dim_layout(self):
        ex = SupervectorExtractor(4, orders=(1, 2, 3))
        assert ex.dim == 4 + 16 + 64

    def test_blocks_normalised_separately(self):
        ex = SupervectorExtractor(4, orders=(1, 2))
        v = ex.extract(hard([0, 1, 2])).to_dense()
        # Unigram block sums to 1; bigram block sums to 1.
        assert v[:4].sum() == pytest.approx(1.0)
        assert v[4:].sum() == pytest.approx(1.0)

    def test_probabilities_match_counts(self):
        ex = SupervectorExtractor(4, orders=(2,))
        v = ex.extract(hard([0, 1, 0, 1])).to_dense()
        # Bigrams: (0,1) x2, (1,0) x1 over 3 windows.
        assert v[0 * 4 + 1] == pytest.approx(2 / 3)
        assert v[1 * 4 + 0] == pytest.approx(1 / 3)

    def test_short_sausage_missing_block(self):
        ex = SupervectorExtractor(4, orders=(1, 3))
        v = ex.extract(hard([0, 1]))  # too short for trigrams
        dense = v.to_dense()
        assert dense[:4].sum() == pytest.approx(1.0)
        assert dense[4:].sum() == 0.0

    def test_wrong_phone_set_rejected(self):
        ex = SupervectorExtractor(9, orders=(1,))
        with pytest.raises(ValueError):
            ex.extract(hard([0]))

    def test_extract_matrix(self):
        ex = SupervectorExtractor(4, orders=(1, 2))
        m = ex.extract_matrix([hard([0, 1]), hard([2, 3, 2])])
        assert m.n_rows == 2
        assert m.dim == ex.dim

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            SupervectorExtractor(4, orders=())
        with pytest.raises(ValueError):
            SupervectorExtractor(4, orders=(2, 1))
        with pytest.raises(ValueError):
            SupervectorExtractor(4, orders=(0,))


class TestTFLLRScaler:
    def _train_matrix(self) -> SparseMatrix:
        ex = SupervectorExtractor(4, orders=(1,))
        return ex.extract_matrix(
            [hard([0, 0, 1]), hard([0, 1, 1]), hard([2, 0, 1])]
        )

    def test_scaling_is_inverse_sqrt(self):
        m = self._train_matrix()
        scaler = TFLLRScaler(min_prob=1e-12).fit(m)
        p_all = m.column_sums() / m.n_rows
        nonzero = p_all > 0
        np.testing.assert_allclose(
            scaler.scale_[nonzero], 1.0 / np.sqrt(p_all[nonzero])
        )

    def test_kernel_equals_scaled_inner_product(self):
        """Eq. 5: K(x_i, x_j) = Σ p_i p_j / p_all."""
        m = self._train_matrix()
        scaler = TFLLRScaler(min_prob=1e-12).fit(m)
        scaled = scaler.transform(m)
        dense = m.to_dense()
        p_all = m.column_sums() / m.n_rows
        safe = np.where(p_all > 0, p_all, np.inf)
        expected = (dense / np.sqrt(safe)) @ (dense / np.sqrt(safe)).T
        np.testing.assert_allclose(
            scaled.to_dense() @ scaled.to_dense().T, expected, atol=1e-9
        )

    def test_min_prob_floors_rare_terms(self):
        m = self._train_matrix()
        scaler = TFLLRScaler(min_prob=0.5).fit(m)
        assert scaler.scale_.max() <= 1.0 / np.sqrt(0.5) + 1e-12

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TFLLRScaler().transform(self._train_matrix())

    def test_dim_mismatch_rejected(self):
        scaler = TFLLRScaler().fit(self._train_matrix())
        other = SupervectorExtractor(5, orders=(1,)).extract_matrix(
            [Sausage.from_hard_sequence(np.array([0]), PhoneSet("u", tuple("vwxyz")))]
        )
        with pytest.raises(ValueError):
            scaler.transform(other)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            TFLLRScaler().fit(SparseMatrix.from_rows([], dim=3))

    def test_fit_transform_idempotent_shape(self):
        m = self._train_matrix()
        out = TFLLRScaler().fit_transform(m)
        assert out.n_rows == m.n_rows and out.dim == m.dim
