"""Tests for expected n-gram counting (paper Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.phoneset import PhoneSet
from repro.frontend.lattice import Sausage, SausageSlot
from repro.ngram.counts import (
    decode_ngram,
    encode_ngram,
    expected_counts_lattice,
    expected_counts_sausage,
)

PS = PhoneSet("t", tuple("abcde"))


class TestEncoding:
    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, phones):
        code = encode_ngram(tuple(phones), 5)
        assert decode_ngram(code, 5, len(phones)) == tuple(phones)

    def test_unigram_is_identity(self):
        assert encode_ngram((3,), 5) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_ngram((5,), 5)
        with pytest.raises(ValueError):
            decode_ngram(25, 5, 1)


def hard_sausage(seq):
    return Sausage.from_hard_sequence(np.array(seq), PS)


class TestSausageCounts:
    def test_hard_sequence_bigram_counts(self):
        counts = expected_counts_sausage(hard_sausage([0, 1, 0, 1]), 2)
        assert counts[encode_ngram((0, 1), 5)] == pytest.approx(2.0)
        assert counts[encode_ngram((1, 0), 5)] == pytest.approx(1.0)

    def test_unigram_counts_sum_to_length(self):
        counts = expected_counts_sausage(hard_sausage([0, 1, 2, 3]), 1)
        assert sum(counts.values()) == pytest.approx(4.0)

    def test_total_mass_invariant(self):
        # Σ counts of order n == (T - n + 1) for any slot distributions.
        slots = [
            SausageSlot(np.array([0, 1]), np.array([0.5, 0.5])),
            SausageSlot(np.array([2, 3]), np.array([0.9, 0.1])),
            SausageSlot(np.array([4]), np.array([1.0])),
        ]
        sausage = Sausage(slots, PS)
        for order in (1, 2, 3):
            counts = expected_counts_sausage(sausage, order)
            assert sum(counts.values()) == pytest.approx(3 - order + 1)

    def test_soft_slot_weighting(self):
        slots = [
            SausageSlot(np.array([0, 1]), np.array([0.25, 0.75])),
            SausageSlot(np.array([2]), np.array([1.0])),
        ]
        counts = expected_counts_sausage(Sausage(slots, PS), 2)
        assert counts[encode_ngram((0, 2), 5)] == pytest.approx(0.25)
        assert counts[encode_ngram((1, 2), 5)] == pytest.approx(0.75)

    def test_order_longer_than_sausage(self):
        assert expected_counts_sausage(hard_sausage([0]), 2) == {}

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            expected_counts_sausage(hard_sausage([0]), 0)


@st.composite
def small_sausages(draw):
    n_slots = draw(st.integers(2, 5))
    slots = []
    for _ in range(n_slots):
        k = draw(st.integers(1, 3))
        phones = sorted(
            draw(
                st.lists(
                    st.integers(0, 4), min_size=k, max_size=k, unique=True
                )
            )
        )
        raw = [draw(st.floats(0.1, 1.0, allow_nan=False)) for _ in range(k)]
        probs = np.array(raw) / np.sum(raw)
        slots.append(SausageSlot(np.array(phones), probs))
    return Sausage(slots, PS)


class TestLatticeAgreement:
    @given(small_sausages(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_sausage_and_lattice_paths_agree(self, sausage, order):
        """The two Eq. 2 implementations must agree on every sausage."""
        fast = expected_counts_sausage(sausage, order)
        slow = expected_counts_lattice(sausage.to_lattice(), order)
        keys = set(fast) | set(slow)
        for key in keys:
            assert fast.get(key, 0.0) == pytest.approx(
                slow.get(key, 0.0), abs=1e-9
            )

    def test_nonuniform_dag(self):
        """A non-sausage DAG: branch with different lengths."""
        from repro.frontend.lattice import Lattice

        # Path A: 0 -a-> 1 -b-> 3 ; Path B: 0 -c-> 3 (weights 0.6/0.4)
        lat = Lattice(
            n_nodes=4,
            starts=np.array([0, 1, 0]),
            ends=np.array([1, 3, 3]),
            phones=np.array([0, 1, 2]),
            log_weights=np.log(np.array([0.6, 1.0, 0.4])),
            phone_set=PS,
        )
        uni = expected_counts_lattice(lat, 1)
        assert uni[0] == pytest.approx(0.6)
        assert uni[1] == pytest.approx(0.6)
        assert uni[2] == pytest.approx(0.4)
        bi = expected_counts_lattice(lat, 2)
        assert bi[encode_ngram((0, 1), 5)] == pytest.approx(0.6)
        assert len(bi) == 1
