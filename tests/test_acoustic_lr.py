"""Tests for the GMM-UBM acoustic LR comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustic_lr import (
    AcousticLanguageRecognizer,
    SdcConfig,
    map_adapt_means,
    shifted_delta_cepstra,
    train_ubm,
)
from repro.frontend.am.gmm import DiagonalGMM


class TestSdc:
    def test_output_shape(self, rng):
        x = rng.normal(size=(50, 13))
        cfg = SdcConfig(n=7, d=1, p=3, k=7)
        out = shifted_delta_cepstra(x, cfg)
        assert out.shape == (50, 49)
        assert cfg.output_dim == 49

    def test_constant_signal_zero(self):
        x = np.ones((20, 8)) * 3.0
        np.testing.assert_allclose(shifted_delta_cepstra(x), 0.0)

    def test_block_structure(self, rng):
        # Block i at frame t equals base[t+iP+d] - base[t+iP-d] (interior).
        x = rng.normal(size=(60, 7))
        cfg = SdcConfig(n=7, d=1, p=3, k=2)
        out = shifted_delta_cepstra(x, cfg)
        t = 10
        np.testing.assert_allclose(out[t, :7], x[t + 1] - x[t - 1])
        np.testing.assert_allclose(out[t, 7:], x[t + 4] - x[t + 2])

    def test_too_few_coefficients(self, rng):
        with pytest.raises(ValueError):
            shifted_delta_cepstra(rng.normal(size=(5, 3)), SdcConfig(n=7))

    def test_empty_input(self):
        out = shifted_delta_cepstra(np.zeros((0, 13)))
        assert out.shape == (0, 49)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SdcConfig(n=0)


class TestUbm:
    def test_train_and_adapt(self, rng):
        pooled = np.vstack(
            [rng.normal(0, 1, (300, 2)), rng.normal(5, 1, (300, 2))]
        )
        ubm = train_ubm(pooled, n_components=4, rng=0)
        assert ubm.means is not None
        # Adaptation data off the UBM modes pulls the nearest means over.
        adapted = map_adapt_means(ubm, rng.normal(3.0, 0.5, (200, 2)))
        moved = np.linalg.norm(adapted.means - ubm.means, axis=1)
        assert moved.max() > 0.3

    def test_adaptation_bounded_by_relevance(self, rng):
        pooled = rng.normal(size=(400, 2))
        ubm = train_ubm(pooled, n_components=2, rng=0)
        frames = rng.normal(3.0, 0.5, size=(100, 2))
        light = map_adapt_means(ubm, frames, relevance=1000.0)
        heavy = map_adapt_means(ubm, frames, relevance=0.1)
        move_light = np.linalg.norm(light.means - ubm.means)
        move_heavy = np.linalg.norm(heavy.means - ubm.means)
        assert move_light < move_heavy

    def test_adapt_keeps_weights_and_variances(self, rng):
        ubm = train_ubm(rng.normal(size=(200, 2)), n_components=2, rng=0)
        adapted = map_adapt_means(ubm, rng.normal(size=(50, 2)))
        np.testing.assert_allclose(adapted.variances, ubm.variances)
        np.testing.assert_allclose(adapted.log_weights, ubm.log_weights)

    def test_subsampling(self, rng):
        ubm = train_ubm(
            rng.normal(size=(5000, 2)), n_components=2, rng=0, max_frames=500
        )
        assert ubm.means is not None

    def test_untrained_ubm_rejected(self, rng):
        with pytest.raises(RuntimeError):
            map_adapt_means(DiagonalGMM(2), rng.normal(size=(10, 2)))

    def test_empty_adaptation_rejected(self, rng):
        ubm = train_ubm(rng.normal(size=(100, 2)), n_components=2, rng=0)
        with pytest.raises(ValueError):
            map_adapt_means(ubm, np.zeros((0, 2)))


class TestAcousticLanguageRecognizer:
    @pytest.fixture(scope="class")
    def trained(self, tiny_bundle):
        rec = AcousticLanguageRecognizer(
            tiny_bundle.acoustics,
            tiny_bundle.language_names,
            n_components=16,
            seed=3,
        )
        rec.train(tiny_bundle.train)
        return rec

    def test_scores_shape(self, trained, tiny_bundle):
        scores = trained.score_corpus(tiny_bundle.test[10.0])
        assert scores.shape == (
            len(tiny_bundle.test[10.0]),
            len(tiny_bundle.language_names),
        )

    def test_beats_chance(self, trained, tiny_bundle):
        corpus = tiny_bundle.test[10.0]
        scores = trained.score_corpus(corpus)
        labels = corpus.label_indices(tiny_bundle.language_names)
        acc = float(np.mean(np.argmax(scores, axis=1) == labels))
        assert acc > 1.2 / len(tiny_bundle.language_names)

    def test_untrained_raises(self, tiny_bundle):
        rec = AcousticLanguageRecognizer(
            tiny_bundle.acoustics, tiny_bundle.language_names
        )
        with pytest.raises(RuntimeError):
            rec.score_utterance(tiny_bundle.train[0])

    def test_unknown_language_rejected(self, tiny_bundle):
        rec = AcousticLanguageRecognizer(
            tiny_bundle.acoustics, ["lang00", "lang01"]
        )
        with pytest.raises(ValueError, match="not in"):
            rec.train(tiny_bundle.train)  # contains other languages

    def test_needs_two_languages(self, tiny_bundle):
        with pytest.raises(ValueError):
            AcousticLanguageRecognizer(tiny_bundle.acoustics, ["solo"])

    def test_raw_frame_mode(self, tiny_bundle):
        rec = AcousticLanguageRecognizer(
            tiny_bundle.acoustics,
            tiny_bundle.language_names,
            n_components=8,
            sdc=None,
            seed=3,
        )
        rec.train(tiny_bundle.train)
        scores = rec.score_corpus(tiny_bundle.test[3.0])
        assert np.all(np.isfinite(scores))
