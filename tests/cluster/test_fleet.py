"""ProcessFleet generics: run-to-completion joins and crash-loop backoff.

The serving-specific fleet behaviour (HTTP health, routing, respawn on
chaos kill) lives in ``test_cluster.py``; these tests drive the
generic layer directly with throwaway worker targets.
"""

from __future__ import annotations

import time

from repro.cluster.fleet import ProcessFleet
from repro.faults.injection import FaultPlan
from repro.obs.metrics import MetricsRegistry


def _ready_then_exit(slot: str, conn) -> None:
    """A worker that serves for exactly zero seconds: the crash-loop."""
    conn.send(("ready", slot))
    conn.close()


def _make_fleet(n: int, *, registry, **overrides) -> ProcessFleet:
    params = dict(
        target=_ready_then_exit,
        make_args=lambda slot, conn: (slot, conn),
        name_prefix="repro-fleet-test",
        health_interval=0.05,
        spawn_timeout=60.0,
        faults=FaultPlan(),
        registry=registry,
        metrics_prefix="cluster",
    )
    params.update(overrides)
    return ProcessFleet(n, **params)


def _counter(registry, name: str) -> float:
    snap = registry.snapshot().get(name, {})
    return float(snap.get("value", 0.0))


class TestRunToCompletion:
    def test_join_drains_when_workers_exit_zero(self):
        registry = MetricsRegistry()
        fleet = _make_fleet(2, registry=registry, respawn=False)
        fleet.start()
        try:
            assert fleet.join(timeout=30.0) is True
            codes = fleet.exitcodes()
            assert sorted(codes) == ["w0", "w1"]
            assert all(code == 0 for code in codes.values())
            # respawn off: voluntary exits are not casualties
            assert _counter(registry, "cluster.respawns") == 0
        finally:
            fleet.stop()

    def test_ready_payload_is_surfaced(self):
        fleet = _make_fleet(1, registry=MetricsRegistry(), respawn=False)
        fleet.start()
        try:
            assert fleet.ports() == {"w0": "w0"}
        finally:
            fleet.join(timeout=30.0)
            fleet.stop()


class TestCrashLoopBackoff:
    def test_crash_looping_slot_backs_off_and_degrades(self):
        registry = MetricsRegistry()
        fleet = _make_fleet(
            1,
            registry=registry,
            respawn=True,
            min_uptime=3600.0,  # every death counts as early
            backoff_base=0.05,
            backoff_cap=0.1,
            max_crash_loops=2,
        )
        fleet.start()
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if fleet.describe()["w0"]["degraded"]:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("slot never degraded")
            description = fleet.describe()["w0"]
            assert description["degraded"] is True
            assert description["crash_streak"] > 2
            assert fleet.alive() == {"w0": False}
            # Each *delayed* respawn counted as one crash loop; the
            # first early death respawns immediately and is free.
            assert _counter(registry, "cluster.crash_loops") >= 1
            assert _counter(registry, "cluster.respawns") >= 1
            # Degraded means *out of the fleet*: no further respawns.
            generation = fleet.describe()["w0"]["generation"]
            time.sleep(0.4)
            assert fleet.describe()["w0"]["generation"] == generation
        finally:
            fleet.stop()
