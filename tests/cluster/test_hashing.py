"""Rendezvous routing: stickiness, balance, minimal disruption."""

from __future__ import annotations

from collections import Counter

from repro.cluster.hashing import (
    rendezvous_choose,
    rendezvous_rank,
    routing_key,
)

SLOTS = ["w0", "w1", "w2", "w3"]


def _keys(n: int) -> list[str]:
    return [routing_key({"utt_id": f"utt-{i}", "phones": [i, i + 1]}) for i in range(n)]


class TestRoutingKey:
    def test_deterministic(self):
        payload = {"utt_id": "u1", "phones": [1, 2, 3], "language": "xx"}
        assert routing_key(payload) == routing_key(dict(payload))

    def test_language_excluded(self):
        base = {"utt_id": "u1", "phones": [1, 2, 3]}
        labelled = dict(base, language="icelandic")
        assert routing_key(base) == routing_key(labelled)

    def test_content_sensitivity(self):
        assert routing_key({"utt_id": "u1"}) != routing_key({"utt_id": "u2"})


class TestRendezvous:
    def test_choice_is_stable(self):
        for key in _keys(32):
            assert rendezvous_choose(key, SLOTS) == rendezvous_choose(
                key, list(reversed(SLOTS))
            )

    def test_rank_starts_with_choice(self):
        for key in _keys(16):
            assert rendezvous_rank(key, SLOTS)[0] == rendezvous_choose(
                key, SLOTS
            )

    def test_minimal_disruption_on_slot_loss(self):
        # Killing w2 must move ONLY the keys w2 owned; every other key
        # keeps its slot (the property modulo hashing lacks).
        keys = _keys(256)
        survivors = [slot for slot in SLOTS if slot != "w2"]
        for key in keys:
            before = rendezvous_choose(key, SLOTS)
            after = rendezvous_choose(key, survivors)
            if before != "w2":
                assert after == before
            else:
                assert after in survivors

    def test_roughly_balanced(self):
        counts = Counter(rendezvous_choose(key, SLOTS) for key in _keys(400))
        assert set(counts) == set(SLOTS)
        assert min(counts.values()) > 400 / len(SLOTS) / 3

    def test_single_slot(self):
        assert rendezvous_choose("anything", ["w0"]) == "w0"
