"""Cluster tier end to end: routing fidelity, aggregation, chaos.

These tests spawn real worker processes (spawn context) over the shared
session artifact, so they are the slowest part of the suite after
training itself; the fleet is kept at two workers and reused across the
happy-path tests.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import make_cluster, rendezvous_choose, routing_key
from repro.cluster.supervisor import WorkerSupervisor
from repro.faults.injection import FaultPlan
from repro.serve import utterance_to_json

#: Engine settings shared by every spawned worker: tight batching, no
#: deadline surprises, modest cache.
ENGINE_KWARGS = {"batch_window": 0.01, "cache_entries": 128}


def _get(url: str, timeout: float = 30.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _post(url: str, payload: dict, timeout: float = 120.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def cluster(artifact_dir):
    """A two-worker fleet + front door; yields (supervisor, base_url)."""
    supervisor, server = make_cluster(
        artifact_dir,
        2,
        engine_kwargs=ENGINE_KWARGS,
        health_interval=0.1,
        forward_timeout=60.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield supervisor, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        supervisor.stop()
        thread.join(timeout=10)


class TestScoreRouting:
    def test_scores_bitwise_match_single_process(
        self, cluster, serve_system, serve_baseline
    ):
        _, url = cluster
        utterances = list(serve_system.bundle.test[3.0].utterances)
        payload = {"utterances": [utterance_to_json(u) for u in utterances]}
        status, body = _post(url + "/score", payload)
        assert status == 200
        reference = serve_system.fused_scores([serve_baseline], 3.0)
        assert np.array_equal(np.asarray(body["scores"]), reference)
        assert body["utt_ids"] == [u.utt_id for u in utterances]
        assert body["degraded"] is False
        # The batch was genuinely sharded across both workers.
        assert len(body["workers"]) == 2

    def test_routing_is_sticky(self, cluster, serve_system):
        # The same utterance always lands on the same slot, so its
        # score-cache entry survives repeat traffic.
        _, url = cluster
        utt = utterance_to_json(
            next(iter(serve_system.bundle.dev.utterances))
        )
        slots = set()
        for _ in range(3):
            status, body = _post(url + "/score", {"utterances": [utt]})
            assert status == 200
            slots.update(body["workers"])
        assert len(slots) == 1
        assert slots == {rendezvous_choose(routing_key(utt), ["w0", "w1"])}

    def test_empty_utterances(self, cluster):
        _, url = cluster
        status, body = _post(url + "/score", {"utterances": []})
        assert status == 200
        assert body["scores"] == []

    def test_bad_request_is_400(self, cluster):
        _, url = cluster
        status, body = _post(url + "/score", {"utterances": [{"bad": 1}]})
        assert status == 400
        assert "error" in body

    def test_unknown_path_404(self, cluster):
        _, url = cluster
        status, _ = _post(url + "/nope", {})
        assert status == 404


class TestAggregation:
    def test_healthz_ok_with_worker_detail(self, cluster):
        _, url = cluster
        status, body = _get(url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["workers"]) == {"w0", "w1"}
        for info in body["workers"].values():
            assert info["alive"] is True
            assert info["status"] == "ok"
            assert info["generation"] >= 1

    def test_stats_merge_without_double_counting(
        self, cluster, serve_system
    ):
        supervisor, url = cluster
        utterances = [
            utterance_to_json(u)
            for u in list(serve_system.bundle.dev.utterances)[:6]
        ]
        _post(url + "/score", {"utterances": utterances})
        status, stats = _get(url + "/stats")
        assert status == 200
        merged = stats["metrics"]
        # Worker-side serve.* counters merged with front-door cluster.*.
        assert merged["serve.requests"]["value"] >= 6
        assert merged["cluster.requests"]["value"] >= 1
        # Cross-check the sum against the workers' own registries.
        ports = supervisor.ports()
        per_worker = 0
        for slot, port in ports.items():
            _, snap = _get(f"http://{supervisor.host}:{port}/metricz")
            per_worker += snap["serve.requests"]["value"]
        assert merged["serve.requests"]["value"] == per_worker

    def test_metricz_pools_latency_samples(self, cluster, serve_system):
        _, url = cluster
        utterances = [
            utterance_to_json(u)
            for u in list(serve_system.bundle.dev.utterances)[:4]
        ]
        _post(url + "/score", {"utterances": utterances})
        status, merged = _get(url + "/metricz")
        assert status == 200
        latency = merged["serve.request_latency_s"]
        assert latency["count"] >= 4
        assert latency["p95"] is not None
        assert len(latency["samples"]) >= 4


class TestWorkerLifecycle:
    def test_sigkill_respawn_and_inflight_503(
        self, artifact_dir, serve_system, serve_trained
    ):
        """SIGKILL mid-request: 503 (not a hang), degraded → ok."""
        stall_target = serve_trained.frontends[0].name
        # Every worker stalls its first decode stage long enough for the
        # kill to land mid-request; no engine deadline, so only the
        # severed connection (not a timeout) can fail the request.
        worker_env = {
            slot: {"REPRO_FAULTS": f"stall:{stall_target}:8"}
            for slot in ("w0", "w1")
        }
        supervisor, server = make_cluster(
            artifact_dir,
            2,
            engine_kwargs=ENGINE_KWARGS,
            worker_env=worker_env,
            health_interval=0.1,
            forward_timeout=60.0,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            utt = utterance_to_json(
                next(iter(serve_system.bundle.dev.utterances))
            )
            victim = rendezvous_choose(routing_key(utt), ["w0", "w1"])
            outcome = {}

            def _request():
                start = time.monotonic()
                status, body = _post(
                    url + "/score", {"utterances": [utt]}, timeout=90.0
                )
                outcome["status"] = status
                outcome["elapsed"] = time.monotonic() - start
                outcome["body"] = body

            requester = threading.Thread(target=_request, daemon=True)
            requester.start()
            time.sleep(1.0)  # let the request reach the stalled decode
            killed = supervisor.kill_one(victim)
            assert killed == victim

            # Degraded immediately: the slot is down/respawning.
            _, health = _get(url + "/healthz")
            assert health["status"] == "degraded"
            assert health["workers"][victim]["status"] in ("dead", "unreachable")

            # The in-flight request fails fast with 503 — it must not
            # ride out the 8 s stall, and it must never hang.
            requester.join(timeout=30)
            assert not requester.is_alive(), "in-flight request hung"
            assert outcome["status"] == 503
            assert outcome["elapsed"] < 8.0

            # The supervisor respawns the slot; /healthz returns to ok
            # with a bumped generation.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, health = _get(url + "/healthz")
                if health["status"] == "ok":
                    break
                time.sleep(0.2)
            assert health["status"] == "ok"
            assert health["workers"][victim]["generation"] >= 2
            _, stats = _get(url + "/stats")
            assert stats["metrics"]["cluster.respawns"]["value"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            supervisor.stop()
            thread.join(timeout=10)

    def test_worker_fault_target_kills_and_recovers(self, artifact_dir):
        """``error:worker:1`` fires supervisor-side: one kill, one respawn."""
        supervisor = WorkerSupervisor(
            artifact_dir,
            1,
            engine_kwargs=ENGINE_KWARGS,
            health_interval=0.05,
            faults=FaultPlan.parse("error:worker:1"),
        )
        with supervisor:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                described = supervisor.describe()["w0"]
                if described["generation"] >= 2 and described["alive"]:
                    break
                time.sleep(0.1)
            described = supervisor.describe()["w0"]
            assert described["generation"] >= 2
            assert described["alive"] is True
            # The budget is spent: no further kills.
            generation = described["generation"]
            time.sleep(0.5)
            assert supervisor.describe()["w0"]["generation"] == generation
