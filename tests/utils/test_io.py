"""Tests for artifact persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.io import (
    MatrixCache,
    load_scores,
    load_sparse,
    save_scores,
    save_sparse,
)
from repro.utils.sparse import SparseMatrix, SparseVector


def sample_matrix() -> SparseMatrix:
    rows = [
        SparseVector.from_dict(10, {1: 2.0, 7: -1.5}),
        SparseVector.from_dict(10, {}),
        SparseVector.from_dict(10, {0: 0.25, 9: 4.0}),
    ]
    return SparseMatrix.from_rows(rows)


class TestSparseRoundtrip:
    def test_roundtrip(self, tmp_path):
        m = sample_matrix()
        save_sparse(tmp_path / "m.npz", m)
        loaded = load_sparse(tmp_path / "m.npz")
        assert loaded.dim == m.dim
        np.testing.assert_array_equal(loaded.indptr, m.indptr)
        np.testing.assert_allclose(loaded.to_dense(), m.to_dense())

    def test_creates_parent_dirs(self, tmp_path):
        save_sparse(tmp_path / "a" / "b" / "m.npz", sample_matrix())
        assert (tmp_path / "a" / "b" / "m.npz").exists()

    def test_empty_matrix(self, tmp_path):
        m = SparseMatrix.from_rows([], dim=5)
        save_sparse(tmp_path / "e.npz", m)
        loaded = load_sparse(tmp_path / "e.npz")
        assert loaded.n_rows == 0 and loaded.dim == 5


class TestScoresRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        scores = {"dev": rng.normal(size=(4, 3)), "test": rng.normal(size=(6, 3))}
        save_scores(tmp_path / "s.npz", scores)
        loaded = load_scores(tmp_path / "s.npz")
        assert set(loaded) == {"dev", "test"}
        np.testing.assert_allclose(loaded["dev"], scores["dev"])

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_scores(tmp_path / "s.npz", {"bad": np.zeros(3)})


class TestMatrixCache:
    def test_get_or_compute_caches(self, tmp_path):
        cache = MatrixCache(tmp_path / "cache")
        calls = []

        def compute():
            calls.append(1)
            return sample_matrix()

        a = cache.get_or_compute("HU", "test@30.0", compute)
        b = cache.get_or_compute("HU", "test@30.0", compute)
        assert len(calls) == 1
        np.testing.assert_allclose(a.to_dense(), b.to_dense())

    def test_keys_isolated(self, tmp_path):
        cache = MatrixCache(tmp_path)
        cache.put("HU", "train", sample_matrix())
        assert cache.has("HU", "train")
        assert not cache.has("RU", "train")
        assert not cache.has("HU", "dev")

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            MatrixCache(tmp_path).get("X", "train")

    def test_tag_sanitisation(self, tmp_path):
        cache = MatrixCache(tmp_path)
        cache.put("A", "test@3.0", sample_matrix())
        assert cache.has("A", "test@3.0")
        # No '@' in the stored filename.
        assert all("@" not in p.name for p in cache.directory.iterdir())


class TestMatrixCacheBound:
    def test_put_evicts_least_recently_used(self, tmp_path):
        cache = MatrixCache(tmp_path, max_entries=2)
        cache.put("A", "train", sample_matrix())
        cache.put("B", "train", sample_matrix())
        cache.get("A", "train")  # refresh A; B becomes least recent
        cache.put("C", "train", sample_matrix())
        assert cache.has("A", "train")
        assert not cache.has("B", "train")
        assert cache.has("C", "train")
        assert len(cache) == 2
        assert len(list(cache.directory.glob("*.npz"))) == 2

    def test_unbounded_by_default(self, tmp_path):
        cache = MatrixCache(tmp_path)
        for name in "ABCDE":
            cache.put(name, "train", sample_matrix())
        assert cache.max_entries is None
        assert len(cache) == 5

    def test_adopts_existing_directory(self, tmp_path):
        import os

        first = MatrixCache(tmp_path)
        for i, name in enumerate(("A", "B", "C")):
            first.put(name, "train", sample_matrix())
            # Distinct mtimes so adoption order is deterministic.
            path = first._path(name, "train")
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        reopened = MatrixCache(tmp_path, max_entries=2)
        # Oldest-modified entry is evicted on open.
        assert not reopened.has("A", "train")
        assert reopened.has("B", "train")
        assert reopened.has("C", "train")

    def test_get_discards_externally_deleted_entries(self, tmp_path):
        cache = MatrixCache(tmp_path, max_entries=3)
        cache.put("A", "train", sample_matrix())
        cache._path("A", "train").unlink()
        with pytest.raises(KeyError):
            cache.get("A", "train")
        assert len(cache) == 0
