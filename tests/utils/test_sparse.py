"""Tests for the sparse vector/matrix containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sparse import SparseMatrix, SparseVector


def dense_to_sparse(vec: np.ndarray) -> SparseVector:
    idx = np.flatnonzero(vec)
    return SparseVector(vec.size, idx.astype(np.int64), vec[idx])


@st.composite
def sparse_vectors(draw, dim: int = 12):
    """Strategy: a random sparse vector of fixed dim."""
    n = draw(st.integers(0, dim))
    indices = draw(
        st.lists(
            st.integers(0, dim - 1), min_size=n, max_size=n, unique=True
        )
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, width=32),
            min_size=n,
            max_size=n,
        )
    )
    order = np.argsort(indices) if indices else []
    return SparseVector(
        dim,
        np.array(sorted(indices), dtype=np.int64),
        np.array(values, dtype=np.float64)[order] if n else np.empty(0),
    )


class TestSparseVector:
    def test_from_dict_orders_indices(self):
        v = SparseVector.from_dict(10, {7: 1.0, 2: 3.0})
        np.testing.assert_array_equal(v.indices, [2, 7])
        np.testing.assert_array_equal(v.values, [3.0, 1.0])

    def test_to_dense_roundtrip(self):
        v = SparseVector.from_dict(6, {0: 1.5, 5: -2.0})
        np.testing.assert_array_equal(v.to_dense(), [1.5, 0, 0, 0, 0, -2.0])

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            SparseVector(3, np.array([3]), np.array([1.0]))

    def test_rejects_unsorted_indices(self):
        with pytest.raises(ValueError):
            SparseVector(5, np.array([3, 1]), np.array([1.0, 2.0]))

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError):
            SparseVector(5, np.array([1, 1]), np.array([1.0, 2.0]))

    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_dot_matches_dense(self, a: SparseVector, b: SparseVector):
        expected = float(a.to_dense() @ b.to_dense())
        assert a.dot(b) == pytest.approx(expected, abs=1e-9)

    @given(sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_dot_dense_matches(self, v: SparseVector):
        w = np.linspace(-1.0, 1.0, v.dim)
        assert v.dot_dense(w) == pytest.approx(
            float(v.to_dense() @ w), abs=1e-9
        )

    @given(sparse_vectors())
    @settings(max_examples=40, deadline=None)
    def test_norms_match_dense(self, v: SparseVector):
        dense = v.to_dense()
        assert v.l2_norm() == pytest.approx(np.linalg.norm(dense), abs=1e-9)
        assert v.l1_norm() == pytest.approx(np.abs(dense).sum(), abs=1e-9)

    def test_scale(self):
        v = SparseVector.from_dict(4, {1: 2.0})
        np.testing.assert_array_equal(v.scale(3.0).values, [6.0])

    def test_componentwise_scale(self):
        v = SparseVector.from_dict(4, {1: 2.0, 3: 5.0})
        diag = np.array([0.0, 10.0, 0.0, 2.0])
        scaled = v.componentwise_scale(diag)
        np.testing.assert_array_equal(scaled.values, [20.0, 10.0])

    def test_dimension_mismatch_raises(self):
        a = SparseVector.from_dict(4, {1: 1.0})
        b = SparseVector.from_dict(5, {1: 1.0})
        with pytest.raises(ValueError):
            a.dot(b)


class TestSparseMatrix:
    def _matrix(self) -> tuple[SparseMatrix, np.ndarray]:
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(5, 9))
        dense[dense < 0.3] = 0.0
        rows = [dense_to_sparse(dense[i]) for i in range(5)]
        return SparseMatrix.from_rows(rows), dense

    def test_shapes(self):
        m, dense = self._matrix()
        assert m.n_rows == 5
        assert m.dim == 9
        assert m.nnz == np.count_nonzero(dense)

    def test_to_dense_roundtrip(self):
        m, dense = self._matrix()
        np.testing.assert_allclose(m.to_dense(), dense)

    def test_matvec_matches_dense(self):
        m, dense = self._matrix()
        w = np.arange(9.0)
        np.testing.assert_allclose(m.matvec_dense(w), dense @ w)

    def test_matvec_with_empty_rows(self):
        rows = [
            SparseVector.from_dict(4, {}),
            SparseVector.from_dict(4, {2: 3.0}),
            SparseVector.from_dict(4, {}),
        ]
        m = SparseMatrix.from_rows(rows)
        np.testing.assert_allclose(
            m.matvec_dense(np.ones(4)), [0.0, 3.0, 0.0]
        )

    def test_matmul_matches_dense(self):
        m, dense = self._matrix()
        w = np.random.default_rng(0).normal(size=(9, 3))
        np.testing.assert_allclose(m.matmul_dense(w), dense @ w)

    def test_row_roundtrip(self):
        m, dense = self._matrix()
        for i in range(m.n_rows):
            np.testing.assert_allclose(m.row(i).to_dense(), dense[i])

    def test_row_norms(self):
        m, dense = self._matrix()
        np.testing.assert_allclose(
            m.row_norms(), np.linalg.norm(dense, axis=1)
        )

    def test_column_sums(self):
        m, dense = self._matrix()
        np.testing.assert_allclose(m.column_sums(), dense.sum(axis=0))

    def test_scale_columns(self):
        m, dense = self._matrix()
        diag = np.linspace(0.5, 2.0, 9)
        np.testing.assert_allclose(
            m.scale_columns(diag).to_dense(), dense * diag
        )

    def test_select_rows(self):
        m, dense = self._matrix()
        sel = m.select_rows(np.array([4, 0]))
        np.testing.assert_allclose(sel.to_dense(), dense[[4, 0]])

    def test_vstack(self):
        m, dense = self._matrix()
        stacked = m.vstack(m)
        assert stacked.n_rows == 10
        np.testing.assert_allclose(stacked.to_dense(), np.vstack([dense, dense]))

    def test_gram_matches_dense(self):
        m, dense = self._matrix()
        np.testing.assert_allclose(m.gram(m), dense @ dense.T)

    def test_empty_matrix_needs_dim(self):
        with pytest.raises(ValueError):
            SparseMatrix.from_rows([])
        m = SparseMatrix.from_rows([], dim=7)
        assert m.n_rows == 0 and m.dim == 7

    def test_inconsistent_dims_rejected(self):
        rows = [SparseVector.from_dict(4, {}), SparseVector.from_dict(5, {})]
        with pytest.raises(ValueError):
            SparseMatrix.from_rows(rows)

    def test_vstack_dim_mismatch(self):
        a = SparseMatrix.from_rows([], dim=3)
        b = SparseMatrix.from_rows([], dim=4)
        with pytest.raises(ValueError):
            a.vstack(b)
