"""pmap fault tolerance: serial fallback, quarantine, broken pools."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.faults.injection import ENV_VAR, reset_ambient_plan
from repro.obs.metrics import default_registry
from repro.utils.parallel import QuarantineExceededError, pmap

#: Enough items to clear pmap's serial-fallback threshold.
_N = 40


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Fresh metrics and no inherited fault plan for every test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_ambient_plan()
    default_registry().reset()
    yield
    reset_ambient_plan()
    default_registry().reset()


def _square(x: int) -> int:
    return x * x


def _fail_on_tens(x: int) -> int:
    if x % 10 == 0:
        raise ValueError(f"bad item {x}")
    return x * x


def _die_in_worker(x: int) -> int:
    # Kill the pool worker process outright; the parent's serial re-run
    # (where there is no parent process) computes the value normally.
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _quarantined() -> float:
    return default_registry().counter("parallel.pmap.quarantined").value


def _fallbacks() -> float:
    return (
        default_registry().counter("parallel.pmap.serial_fallbacks").value
    )


class TestQuarantineSerial:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            pmap(_square, [1], on_error="retry")

    def test_fail_mode_propagates(self):
        with pytest.raises(ValueError, match="bad item 0"):
            pmap(_fail_on_tens, range(_N), workers=1)

    def test_quarantine_fills_slots_and_records_indices(self):
        quarantined: list[int] = []
        results = pmap(
            _fail_on_tens,
            range(_N),
            workers=1,
            on_error="quarantine",
            quarantine_value=-1,
            quarantined=quarantined,
        )
        assert quarantined == [0, 10, 20, 30]
        assert [results[i] for i in quarantined] == [-1] * 4
        healthy = [i for i in range(_N) if i % 10 != 0]
        assert all(results[i] == i * i for i in healthy)
        assert _quarantined() == 4

    def test_fraction_ceiling_hard_fails(self):
        with pytest.raises(QuarantineExceededError) as info:
            pmap(
                _fail_on_tens,
                range(_N),
                workers=1,
                on_error="quarantine",
                max_quarantine_fraction=0.05,  # allows 2, we lose 4
            )
        err = info.value
        assert (err.failed, err.total) == (4, _N)
        assert err.max_fraction == 0.05
        assert isinstance(err.last, ValueError)
        # Nothing was quarantined-and-recorded on the failure path.
        assert _quarantined() == 0


class TestPoolFallback:
    def test_failed_chunks_rerun_serially(self):
        quarantined: list[int] = []
        results = pmap(
            _fail_on_tens,
            range(_N),
            workers=2,
            on_error="quarantine",
            quarantine_value=-1,
            quarantined=quarantined,
        )
        assert quarantined == [0, 10, 20, 30]
        healthy = [i for i in range(_N) if i % 10 != 0]
        assert all(results[i] == i * i for i in healthy)
        assert _fallbacks() >= 1

    def test_fail_mode_keeps_original_exception(self):
        with pytest.raises(ValueError, match="bad item"):
            pmap(_fail_on_tens, range(_N), workers=2)

    def test_broken_pool_degrades_to_serial(self):
        # Regression: a worker dying mid-map used to abort the whole
        # call with BrokenProcessPool; now every chunk is recovered
        # serially in the parent and the gauge stops advertising the
        # dead pool's width.
        results = pmap(_die_in_worker, range(_N), workers=2)
        assert results == [x * x for x in range(_N)]
        assert _fallbacks() >= 1
        assert (
            default_registry().gauge("parallel.pmap.workers").value == 1
        )

    def test_worker_fault_injection_recovered_in_parent(self, monkeypatch):
        # The ambient plan fires once per chunk inside pool workers
        # only, so every chunk fails remotely and succeeds in the
        # parent's serial re-run: transient chaos, identical results.
        monkeypatch.setenv(ENV_VAR, "error:pmap:99")
        reset_ambient_plan()
        results = pmap(_square, range(_N), workers=2)
        assert results == [x * x for x in range(_N)]
        assert _fallbacks() >= 1
        assert _quarantined() == 0
