"""Tests for the argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_in,
    check_matrix,
    check_non_negative,
    check_positive,
    check_prob_vector,
    check_probability,
)


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)

    def test_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_probability_ok(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)

    def test_check_in(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "c", ["a", "b"])


class TestProbVector:
    def test_ok(self):
        p = check_prob_vector("p", np.array([0.25, 0.75]))
        assert p.dtype == np.float64

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_prob_vector("p", np.array([0.5, 0.6]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_prob_vector("p", np.array([-0.5, 1.5]))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            check_prob_vector("p", np.array([]))
        with pytest.raises(ValueError):
            check_prob_vector("p", np.ones((2, 2)) / 4)


class TestMatrix:
    def test_ok_and_shape_constraints(self):
        x = check_matrix("x", [[1.0, 2.0], [3.0, 4.0]], n_rows=2, n_cols=2)
        assert x.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_matrix("x", np.ones(3))

    def test_rejects_wrong_rows(self):
        with pytest.raises(ValueError, match="rows"):
            check_matrix("x", np.ones((2, 3)), n_rows=4)

    def test_rejects_wrong_cols(self):
        with pytest.raises(ValueError, match="columns"):
            check_matrix("x", np.ones((2, 3)), n_cols=4)
