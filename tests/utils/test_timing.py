"""Tests for stage timing and the Eq. 16–19 cost ledger."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.timing import CostLedger, StageTimer


class TestStageTimer:
    def test_records_elapsed_and_calls(self):
        timer = StageTimer()
        with timer.stage("decode"):
            time.sleep(0.01)
        with timer.stage("decode"):
            pass
        assert timer.elapsed("decode") >= 0.01
        assert timer.calls("decode") == 2

    def test_unknown_stage_is_zero(self):
        timer = StageTimer()
        assert timer.elapsed("nope") == 0.0
        assert timer.calls("nope") == 0

    def test_real_time_factor(self):
        timer = StageTimer()
        with timer.stage("decode", audio_seconds=2.0):
            time.sleep(0.02)
        rtf = timer.real_time_factor("decode")
        assert rtf == pytest.approx(timer.elapsed("decode") / 2.0)

    def test_rtf_nan_without_audio(self):
        timer = StageTimer()
        with timer.stage("decode"):
            pass
        assert np.isnan(timer.real_time_factor("decode"))

    def test_add_audio(self):
        timer = StageTimer()
        with timer.stage("x", audio_seconds=1.0):
            pass
        timer.add_audio("x", 3.0)
        assert timer.real_time_factor("x") == pytest.approx(
            timer.elapsed("x") / 4.0
        )

    def test_exception_still_recorded(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("bad"):
                raise RuntimeError("boom")
        assert timer.calls("bad") == 1

    def test_merge(self):
        a, b = StageTimer(), StageTimer()
        with a.stage("s", audio_seconds=1.0):
            pass
        with b.stage("s", audio_seconds=2.0):
            pass
        with b.stage("t"):
            pass
        a.merge(b)
        assert a.calls("s") == 2
        assert a.calls("t") == 1
        assert set(a.stages()) == {"s", "t"}


class TestStageTimerEmitsSpans:
    """StageTimer is now a thin wrapper over repro.obs.trace spans."""

    def test_stage_emits_span_with_audio_counter(self):
        from repro.obs import trace

        trace.stop_trace()
        trace.start_trace("timing-test")
        try:
            timer = StageTimer()
            with timer.stage("decoding", audio_seconds=2.5):
                pass
        finally:
            root = trace.stop_trace()
        (span,) = root.children
        assert span.name == "decoding"
        assert span.counters["audio_s"] == pytest.approx(2.5)
        # One timing source of truth: the timer reads the span's clock.
        assert timer.elapsed("decoding") == pytest.approx(span.wall_s)

    def test_timer_works_without_active_trace(self):
        from repro.obs import trace

        assert not trace.enabled()
        timer = StageTimer()
        with timer.stage("decoding"):
            pass
        assert timer.calls("decoding") == 1
        assert timer.elapsed("decoding") >= 0.0


class TestCostLedger:
    def test_total(self):
        ledger = CostLedger(phi=10.0, modeling=2.0, test=1.0)
        ledger.extra["fusion"] = 0.5
        assert ledger.total() == pytest.approx(13.5)

    def test_ratio_eq18(self):
        # With phi dominating, the DBA/baseline ratio approaches 1 (Eq. 19).
        baseline = CostLedger(phi=100.0, modeling=1.0, test=0.5)
        dba = CostLedger(phi=100.0, modeling=2.0, test=1.0)
        ratio = dba.ratio_to(baseline)
        assert 1.0 < ratio < 1.05

    def test_ratio_empty_baseline_nan(self):
        assert np.isnan(CostLedger().ratio_to(CostLedger()))
