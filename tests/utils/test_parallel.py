"""Tests for the scatter/gather parallel map."""

from __future__ import annotations

import pytest

from repro.utils.parallel import chunked, effective_workers, pmap


def _square(x: int) -> int:
    return x * x


class TestChunked:
    def test_even_split(self):
        assert chunked(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_sizes_differ_by_one(self):
        chunks = chunked(list(range(7)), 3)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 7
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunked([1, 2], 5)
        assert chunks == [[1], [2]]  # empty chunks omitted

    def test_order_preserved(self):
        flat = [x for c in chunked(list(range(100)), 7) for x in c]
        assert flat == list(range(100))

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestEffectiveWorkers:
    def test_auto_at_least_one(self):
        assert effective_workers(None) >= 1
        assert effective_workers(0) >= 1

    def test_explicit_clamped(self):
        assert effective_workers(-3) == 1
        assert effective_workers(4) == 4


class TestPmap:
    def test_serial_map(self):
        assert pmap(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert pmap(_square, [], workers=1) == []

    def test_small_input_stays_serial_even_with_workers(self):
        # Below the parallel threshold the pool must not be spun up;
        # lambdas (unpicklable) prove the serial path was taken.
        assert pmap(lambda x: x + 1, [1, 2, 3], workers=4) == [2, 3, 4]

    def test_parallel_matches_serial(self):
        items = list(range(100))
        assert pmap(_square, items, workers=2) == [x * x for x in items]

    def test_order_preserved_parallel(self):
        items = list(range(64))
        assert pmap(_square, items, workers=2) == [x * x for x in items]


class TestReproWorkersEnv:
    def test_env_sets_auto_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert effective_workers(None) == 3
        assert effective_workers(0) == 3

    def test_explicit_request_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert effective_workers(2) == 2

    def test_env_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-5")
        assert effective_workers(None) == 1

    def test_env_clamped_to_upper_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert effective_workers(None) == 256

    def test_non_integer_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            effective_workers(None)

    def test_unset_env_autodetects(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert effective_workers(None) >= 1


class TestWorkersGauge:
    """`parallel.pmap.workers` reports the width actually used."""

    def _gauge(self):
        from repro.obs.metrics import default_registry

        return default_registry().gauge("parallel.pmap.workers")

    def test_serial_fallback_reports_one(self):
        # Too few items for the pool: execution is serial, and the gauge
        # must say so even though 4 workers were requested.
        pmap(_square, [1, 2, 3], workers=4)
        assert self._gauge().value == 1

    def test_explicit_serial_reports_one(self):
        pmap(_square, list(range(64)), workers=1)
        assert self._gauge().value == 1

    def test_parallel_reports_pool_width(self):
        pmap(_square, list(range(64)), workers=2)
        assert self._gauge().value == 2


# ----------------------------------------------------------------------
# worker metrics merge: instrumentation recorded inside pool workers
# must land in the parent registry (the decoder's counters used to be
# silently dropped whenever decode fanned out across processes).
# ----------------------------------------------------------------------
def _square_with_metrics(x: int) -> int:
    from repro.obs.metrics import default_registry

    reg = default_registry()
    reg.counter("test.pmap.metrics.calls").inc()
    reg.histogram("test.pmap.metrics.values", maxlen=256).observe(float(x))
    reg.gauge("test.pmap.metrics.gauge").set(float(x))
    return x * x


class TestWorkerMetricsMerge:
    def test_pool_worker_metrics_reach_parent_registry(self):
        from repro.obs.metrics import default_registry

        reg = default_registry()
        counter = reg.counter("test.pmap.metrics.calls")
        hist = reg.histogram("test.pmap.metrics.values", maxlen=256)
        gauge = reg.gauge("test.pmap.metrics.gauge")
        gauge.set(-1.0)
        base_calls = counter.value
        base_count = hist.count
        items = list(range(64))
        assert pmap(_square_with_metrics, items, workers=2) == [
            x * x for x in items
        ]
        assert counter.value == base_calls + len(items)
        assert hist.count == base_count + len(items)
        # Last-value gauges from exited workers are deliberately dropped.
        assert gauge.value == -1.0

    def test_serial_path_unchanged(self):
        from repro.obs.metrics import default_registry

        counter = default_registry().counter("test.pmap.metrics.calls")
        base = counter.value
        items = list(range(8))
        assert pmap(_square_with_metrics, items, workers=1) == [
            x * x for x in items
        ]
        assert counter.value == base + len(items)

    def test_decoder_metrics_survive_pool_fanout(self):
        # The concrete regression: frontend.decoder.decodes recorded in
        # pool workers used to vanish.  Simulate the campaign fan-out by
        # incrementing the decoder's own counter from workers.
        from repro.obs.metrics import default_registry

        import repro.frontend.decoder  # noqa: F401 - registers the counter

        counter = default_registry().counter("frontend.decoder.decodes")
        base = counter.value
        pmap(_inc_decoder_counter, list(range(64)), workers=2)
        assert counter.value == base + 64


def _inc_decoder_counter(x: int) -> int:
    from repro.obs.metrics import default_registry

    default_registry().counter("frontend.decoder.decodes").inc()
    return x
