"""Tests for deterministic RNG stream derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import child_rng, ensure_rng, spawn_many


class TestChildRng:
    def test_same_key_same_stream(self):
        a = child_rng(42, "corpus/train").random(5)
        b = child_rng(42, "corpus/train").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = child_rng(42, "corpus/train").random(5)
        b = child_rng(42, "corpus/test").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = child_rng(1, "x").random(5)
        b = child_rng(2, "x").random(5)
        assert not np.allclose(a, b)

    def test_key_insensitive_to_other_consumers(self):
        # Deriving stream B must not change stream A (order independence).
        a1 = child_rng(7, "a").random(3)
        _ = child_rng(7, "b").random(3)
        a2 = child_rng(7, "a").random(3)
        np.testing.assert_array_equal(a1, a2)


class TestEnsureRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_int_seed_deterministic(self):
        np.testing.assert_array_equal(
            ensure_rng(5).random(3), ensure_rng(5).random(3)
        )

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawnMany:
    def test_count_and_independence(self):
        gens = spawn_many(3, "workers", 4)
        assert len(gens) == 4
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_many(3, "workers", -1)

    def test_zero_ok(self):
        assert spawn_many(3, "w", 0) == []
