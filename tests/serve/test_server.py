"""HTTP surface: /score, /healthz, /stats and error handling."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ScoringEngine, make_server, utterance_to_json


@pytest.fixture()
def server(serve_trained):
    """A live server on an ephemeral port; yields its base URL."""
    engine = ScoringEngine(
        serve_trained, batch_window=0.01, cache_entries=0
    )
    srv = make_server(engine, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()
        engine.close()
        thread.join(timeout=10)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, server, serve_trained):
        body = _get(server + "/healthz")
        assert body["status"] == "ok"
        assert body["languages"] == list(serve_trained.language_names)
        assert body["subsystems"] == [
            name for name, _ in serve_trained.subsystems
        ]

    def test_score_matches_engine(self, server, serve_trained,
                                  serve_system):
        utterances = list(serve_system.bundle.dev.utterances)[:3]
        body = _post(
            server + "/score",
            {"utterances": [utterance_to_json(u) for u in utterances]},
        )
        reference = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(utterances)
        assert body["utt_ids"] == [u.utt_id for u in utterances]
        assert np.array_equal(np.asarray(body["scores"]), reference)
        assert body["predictions"] == [
            serve_trained.language_names[k]
            for k in np.argmax(reference, axis=1)
        ]

    def test_stats_reflect_traffic(self, server, serve_system):
        utterances = list(serve_system.bundle.dev.utterances)[:2]
        _post(
            server + "/score",
            {"utterances": [utterance_to_json(u) for u in utterances]},
        )
        stats = _get(server + "/stats")
        assert stats["requests"] >= 2
        assert stats["batches"] >= 1
        assert "decoding" in stats["stages"]

    def test_empty_utterance_list(self, server):
        body = _post(server + "/score", {"utterances": []})
        assert body["utt_ids"] == []
        assert body["scores"] == []


class TestErrors:
    def _status_of(self, exc_info) -> int:
        return exc_info.value.code

    def test_unknown_get_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server + "/nope")
        assert exc_info.value.code == 404

    def test_unknown_post_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/nope", {})
        assert exc_info.value.code == 404

    def test_malformed_body_400(self, server):
        request = urllib.request.Request(
            server + "/score", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30)
        assert exc_info.value.code == 400

    def test_missing_utterances_key_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/score", {"wrong": []})
        assert exc_info.value.code == 400

    def test_bad_utterance_payload_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/score", {"utterances": [{"utt_id": "x"}]})
        assert exc_info.value.code == 400
