"""HTTP surface: /score, /healthz, /stats, error handling, overload."""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import numpy as np
import pytest

from repro.serve import ScoringEngine, make_server, utterance_to_json
from repro.serve.engine import EngineClosedError
from repro.serve.faults import FaultPlan


@pytest.fixture()
def server(serve_trained):
    """A live server on an ephemeral port; yields its base URL."""
    engine = ScoringEngine(
        serve_trained, batch_window=0.01, cache_entries=0
    )
    srv = make_server(engine, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()
        engine.close()
        thread.join(timeout=10)


@contextlib.contextmanager
def _live_server(engine):
    """Serve ``engine`` on an ephemeral port; yields the base URL."""
    srv = make_server(engine, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()
        engine.close()
        thread.join(timeout=10)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, server, serve_trained):
        body = _get(server + "/healthz")
        assert body["status"] == "ok"
        assert body["degraded"] is False
        assert set(body["breakers"].values()) == {"closed"}
        assert body["languages"] == list(serve_trained.language_names)
        assert body["subsystems"] == [
            name for name, _ in serve_trained.subsystems
        ]

    def test_score_matches_engine(self, server, serve_trained,
                                  serve_system):
        utterances = list(serve_system.bundle.dev.utterances)[:3]
        body = _post(
            server + "/score",
            {"utterances": [utterance_to_json(u) for u in utterances]},
        )
        reference = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(utterances)
        assert body["utt_ids"] == [u.utt_id for u in utterances]
        assert body["degraded"] is False
        assert np.array_equal(np.asarray(body["scores"]), reference)
        assert body["predictions"] == [
            serve_trained.language_names[k]
            for k in np.argmax(reference, axis=1)
        ]

    def test_stats_reflect_traffic(self, server, serve_system):
        utterances = list(serve_system.bundle.dev.utterances)[:2]
        _post(
            server + "/score",
            {"utterances": [utterance_to_json(u) for u in utterances]},
        )
        stats = _get(server + "/stats")
        assert stats["requests"] >= 2
        assert stats["batches"] >= 1
        assert "decoding" in stats["stages"]
        assert stats["degraded"] is False
        assert stats["rejected"] == 0
        assert stats["batcher_restarts"] == 0
        assert stats["metrics"]["serve.inflight"]["value"] == 0

    def test_empty_utterance_list(self, server):
        body = _post(server + "/score", {"utterances": []})
        assert body["utt_ids"] == []
        assert body["scores"] == []


class TestErrors:
    def _status_of(self, exc_info) -> int:
        return exc_info.value.code

    def test_unknown_get_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server + "/nope")
        assert exc_info.value.code == 404

    def test_unknown_post_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/nope", {})
        assert exc_info.value.code == 404

    def test_malformed_body_400(self, server):
        request = urllib.request.Request(
            server + "/score", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30)
        assert exc_info.value.code == 400

    def test_missing_utterances_key_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/score", {"wrong": []})
        assert exc_info.value.code == 400

    def test_bad_utterance_payload_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/score", {"utterances": [{"utt_id": "x"}]})
        assert exc_info.value.code == 400

    def test_non_finite_session_params_400(self, server, serve_system):
        utterance = utterance_to_json(
            list(serve_system.bundle.dev.utterances)[0]
        )
        utterance["session"]["snr_db"] = float("nan")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _post(server + "/score", {"utterances": [utterance]})
        assert exc_info.value.code == 400


def _raw_exchange(base_url: str, data: bytes) -> bytes:
    """Send raw bytes over one connection; return everything until EOF."""
    parsed = urllib.parse.urlparse(base_url)
    with socket.create_connection(
        (parsed.hostname, parsed.port), timeout=30
    ) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestKeepAliveHygiene:
    """4xx responses sent before the body is drained must close the
    connection — otherwise the unread body bytes desync the next
    pipelined request on the same connection."""

    def test_bad_content_length_closes_connection(self, server):
        # A second, well-formed request is pipelined after the bad one;
        # the server must close instead of parsing the stale bytes.
        raw = _raw_exchange(
            server,
            b"POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: nope\r\n"
            b"\r\n"
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"connection: close" in raw.lower()
        # Exactly one response came back: the connection was closed, not
        # left to misparse the pipelined GET.
        assert raw.count(b"HTTP/1.1 ") == 1

    def test_oversized_content_length_closes_connection(self, server):
        raw = _raw_exchange(
            server,
            b"POST /score HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 99999999999\r\n\r\n"
            b"{}",
        )
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"connection: close" in raw.lower()

    def test_unknown_post_path_closes_connection(self, server):
        raw = _raw_exchange(
            server,
            b"POST /nope HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 404")
        assert b"connection: close" in raw.lower()

    def test_fully_read_400_keeps_connection_alive(self, server):
        # Malformed JSON is read in full before the 400: keep-alive is
        # safe, and a pipelined /healthz on the same connection works.
        body = b"not json"
        raw = _raw_exchange(
            server,
            b"POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
            + b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400")
        assert raw.count(b"HTTP/1.1 ") == 2
        assert b'"status"' in raw


class TestBindFailure:
    def test_make_server_bind_failure_closes_engine(self, serve_trained):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            engine = ScoringEngine(serve_trained)
            engine.start()
            batcher = engine._thread
            assert batcher is not None and batcher.is_alive()
            with pytest.raises(OSError):
                make_server(engine, port=port)
            # The engine was closed: its batcher thread is gone and it
            # refuses further work — no silently leaked thread.
            assert engine._thread is None
            assert not batcher.is_alive()
            with pytest.raises(EngineClosedError):
                engine.start()
        finally:
            blocker.close()


class TestOverloadResponses:
    def test_queue_full_returns_429_with_retry_after(
        self, serve_trained, serve_system
    ):
        utterances = list(serve_system.bundle.dev.utterances)[:4]
        plan = FaultPlan.parse("stall:batcher:1.5")
        engine = ScoringEngine(
            serve_trained,
            batch_window=0.0,
            max_batch=1,
            max_queue=1,
            cache_entries=0,
            faults=plan,
        )
        with _live_server(engine) as url:
            inflight = engine.submit(utterances[0])
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with engine._cv:
                    if not engine._queue:
                        break
                time.sleep(0.005)
            queued = engine.submit(utterances[1])  # fills the queue
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _post(
                    url + "/score",
                    {"utterances": [utterance_to_json(utterances[2])]},
                )
            assert exc_info.value.code == 429
            assert exc_info.value.headers.get("Retry-After") == "1"
            plan.clear()  # lift the stall so teardown drains quickly
            assert inflight.result(timeout=60) is not None
            assert queued.result(timeout=60) is not None
            assert engine.stats()["rejected"] == 1

    def test_stalled_frontend_returns_503_within_deadline(
        self, serve_trained, serve_system
    ):
        utterances = list(serve_system.bundle.dev.utterances)[:1]
        stalled = serve_trained.frontends[0].name
        engine = ScoringEngine(
            serve_trained,
            batch_window=0.0,
            cache_entries=0,
            deadline=0.25,
            faults=FaultPlan.parse(f"stall:{stalled}:2.0"),
        )
        with _live_server(engine) as url:
            t0 = time.monotonic()
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _post(
                    url + "/score",
                    {"utterances": [utterance_to_json(utterances[0])]},
                )
            elapsed = time.monotonic() - t0
            assert exc_info.value.code == 503
            assert exc_info.value.headers.get("Retry-After") == "1"
            # Answered on the deadline, far before the 2 s stall ends.
            assert elapsed < 1.5

    def test_degraded_responses_flagged(self, serve_trained, serve_system):
        utterances = list(serve_system.bundle.dev.utterances)[:2]
        broken = serve_trained.frontends[0].name
        engine = ScoringEngine(
            serve_trained,
            batch_window=0.01,
            cache_entries=0,
            breaker_threshold=1,
            breaker_cooldown=60.0,
            faults=FaultPlan.parse(f"error:{broken}"),
        )
        with _live_server(engine) as url:
            body = _post(
                url + "/score",
                {"utterances": [utterance_to_json(u) for u in utterances]},
            )
            assert body["degraded"] is True
            assert len(body["scores"]) == len(utterances)
            health = _get(url + "/healthz")
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["breakers"][broken] == "open"
            stats = _get(url + "/stats")
            assert stats["degraded"] is True
            assert stats["breaker"][broken] == "open"
            assert (
                stats["metrics"][f"serve.breaker.{broken}.state"]["value"]
                == 2.0
            )
