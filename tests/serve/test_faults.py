"""Fault-injection plans: parsing, application, env activation."""

from __future__ import annotations

import time

import pytest

from repro.serve.faults import ENV_VAR, FaultPlan, InjectedFault


class TestParsing:
    def test_empty_spec_is_falsy_noop(self):
        plan = FaultPlan.parse("")
        assert not plan
        plan.apply("anything")  # no-op

    def test_stall_and_error_directives(self):
        plan = FaultPlan.parse("stall:HU:0.5, error:batcher")
        assert plan
        assert plan.targets() == ["HU", "batcher"]

    def test_error_with_budget(self):
        plan = FaultPlan.parse("error:fe:2")
        with pytest.raises(InjectedFault):
            plan.apply("fe")
        with pytest.raises(InjectedFault):
            plan.apply("fe")
        plan.apply("fe")  # budget spent: disarmed
        assert not plan

    @pytest.mark.parametrize(
        "spec",
        [
            "stall:HU",               # stall needs seconds
            "stall:HU:abc",           # non-numeric seconds
            "stall::1.0",             # empty target
            "stall:HU:-1",            # negative stall
            "error:",                 # empty target
            "error:fe:0",             # zero budget
            "error:fe:x",             # non-numeric budget
            "chaos:fe",               # unknown action
            "error:fe:1:extra",       # too many fields
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestApplication:
    def test_stall_sleeps(self):
        plan = FaultPlan.parse("stall:fe:0.05")
        t0 = time.monotonic()
        plan.apply("fe")
        assert time.monotonic() - t0 >= 0.05

    def test_error_raises(self):
        plan = FaultPlan.parse("error:fe")
        with pytest.raises(InjectedFault, match="fe"):
            plan.apply("fe")
        # Unbudgeted faults persist.
        with pytest.raises(InjectedFault):
            plan.apply("fe")

    def test_untargeted_component_unaffected(self):
        plan = FaultPlan.parse("error:fe")
        plan.apply("other")  # no-op

    def test_clear_lifts_faults(self):
        plan = FaultPlan.parse("error:fe,stall:other:9")
        plan.clear("fe")
        plan.apply("fe")  # disarmed
        assert plan.targets() == ["other"]
        plan.clear()
        assert not plan


class TestEnvActivation:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "error:fe")
        plan = FaultPlan.from_env()
        with pytest.raises(InjectedFault):
            plan.apply("fe")

    def test_from_env_unset_is_empty(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not FaultPlan.from_env()


class TestShim:
    def test_serve_faults_is_a_shim_over_repro_faults(self):
        # The module moved to repro.faults.injection in 1.5; the old
        # path must keep re-exporting the *same* objects so existing
        # plans, excepts and isinstance checks keep working.
        import repro.faults.injection as injection
        import repro.serve.faults as shim

        assert shim.FaultPlan is injection.FaultPlan
        assert shim.InjectedFault is injection.InjectedFault
        assert shim.ENV_VAR == injection.ENV_VAR
        assert sorted(shim.__all__) == sorted(
            ["ENV_VAR", "FaultPlan", "InjectedFault"]
        )
