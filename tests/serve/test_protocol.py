"""JSON wire format and the cache-key digest."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.serve.protocol import (
    UNLABELLED,
    utterance_digest,
    utterance_from_json,
    utterance_to_json,
)


@pytest.fixture()
def utterance(serve_system):
    """One dev utterance from the shared bundle."""
    return serve_system.bundle.dev.utterances[0]


class TestJsonRoundTrip:
    def test_lossless_through_json_text(self, utterance):
        payload = json.loads(json.dumps(utterance_to_json(utterance)))
        rebuilt = utterance_from_json(payload)
        assert rebuilt.utt_id == utterance.utt_id
        assert rebuilt.language == utterance.language
        assert np.array_equal(rebuilt.phones, utterance.phones)
        assert np.array_equal(rebuilt.phone_frames, utterance.phone_frames)
        session, orig = rebuilt.session, utterance.session
        assert np.array_equal(session.speaker.offset, orig.speaker.offset)
        assert session.speaker.rate == orig.speaker.rate
        assert np.array_equal(session.channel.tilt, orig.channel.tilt)
        assert session.channel.gain == orig.channel.gain
        assert session.snr_db == orig.snr_db
        assert rebuilt.frame_rate == utterance.frame_rate

    def test_round_trip_preserves_digest(self, utterance):
        payload = json.loads(json.dumps(utterance_to_json(utterance)))
        assert utterance_digest(
            utterance_from_json(payload)
        ) == utterance_digest(utterance)

    def test_language_defaults_to_unlabelled(self, utterance):
        payload = utterance_to_json(utterance)
        del payload["language"]
        assert utterance_from_json(payload).language == UNLABELLED

    def test_missing_field_raises_value_error(self, utterance):
        payload = utterance_to_json(utterance)
        del payload["phones"]
        with pytest.raises(ValueError, match="missing field"):
            utterance_from_json(payload)
        with pytest.raises(ValueError, match="missing field"):
            utterance_from_json({"utt_id": "x"})

    @pytest.mark.parametrize(
        "path, value",
        [
            (("session", "snr_db"), float("nan")),
            (("session", "speaker_rate"), float("inf")),
            (("session", "channel_gain"), float("-inf")),
            (("frame_rate",), float("nan")),
            (("nominal_duration",), float("inf")),
        ],
    )
    def test_non_finite_scalars_rejected(self, utterance, path, value):
        # A smuggled NaN would flow into scores and be cached under the
        # utterance digest — reject it at the wire.
        payload = utterance_to_json(utterance)
        target = payload
        for key in path[:-1]:
            target = target[key]
        target[path[-1]] = value
        with pytest.raises(ValueError, match="finite"):
            utterance_from_json(payload)

    @pytest.mark.parametrize(
        "field", ["speaker_offset", "channel_tilt"]
    )
    def test_non_finite_vectors_rejected(self, utterance, field):
        payload = utterance_to_json(utterance)
        payload["session"][field][0] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            utterance_from_json(payload)


class TestDigest:
    def test_digest_depends_on_utt_id(self, utterance):
        # The decode RNG is keyed by utt_id, so the cache key must be too.
        renamed = dataclasses.replace(utterance, utt_id="other-id")
        assert utterance_digest(renamed) != utterance_digest(utterance)

    def test_digest_ignores_language_label(self, utterance):
        relabelled = dataclasses.replace(utterance, language=UNLABELLED)
        assert utterance_digest(relabelled) == utterance_digest(utterance)

    def test_digest_depends_on_content(self, utterance):
        frames = utterance.phone_frames.copy()
        frames[0] += 1
        altered = dataclasses.replace(utterance, phone_frames=frames)
        assert utterance_digest(altered) != utterance_digest(utterance)
