"""Tests for the online scoring service (repro.serve)."""
