"""Overload and partial-failure behaviour of the scoring engine.

The headline regression here: a client cancelling a queued future used
to make the batcher's ``Future.set_result`` raise ``InvalidStateError``,
killing the (unsupervised) batcher thread and hanging every subsequent
``submit`` forever.  These tests pin the supervised behaviour — cancels
are absorbed, crashes restart the loop, queues are bounded, deadlines
expire, and circuit-broken frontends degrade fusion instead of failing
the service.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import ScoringEngine
from repro.serve.engine import (
    AllFrontendsDownError,
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
    _Request,
)
from repro.serve.faults import FaultPlan, InjectedFault
from repro.utils.rng import child_rng


@pytest.fixture()
def dev_utterances(serve_system):
    """A handful of dev utterances to score."""
    return list(serve_system.bundle.dev.utterances)[:6]


def _wait_queue_empty(engine, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with engine._cv:
            if not engine._queue:
                return
        time.sleep(0.005)
    raise AssertionError("queue never drained")


def _linear_reference(trained, utterances, dead: set[str]) -> np.ndarray:
    """Eq. 20 linear fusion over surviving subsystems, from first principles."""
    seed = trained.config.system.seed
    extractors = {}
    for fe_name, vsm in trained.subsystems:
        extractors.setdefault(fe_name, vsm)
    raw = {}
    for frontend in trained.frontends:
        if frontend.name in dead or frontend.name not in extractors:
            continue
        sausages = [
            frontend.decode(
                u, child_rng(seed, f"decode/{frontend.name}/{u.utt_id}")
            )
            for u in utterances
        ]
        raw[frontend.name] = extractors[frontend.name].extract(sausages)
    live = [
        q
        for q, (fe_name, _) in enumerate(trained.subsystems)
        if fe_name not in dead
    ]
    weights = np.asarray(trained.fusion.weights_, dtype=np.float64)[live]
    weights = weights / weights.sum()
    fused = np.zeros((len(utterances), trained.n_classes))
    for w, q in zip(weights, live):
        fe_name, vsm = trained.subsystems[q]
        fused += w * vsm.score_matrix(raw[fe_name])
    return fused


class TestBatcherSupervision:
    def test_cancelled_queued_request_does_not_wedge_engine(
        self, serve_trained, dev_utterances
    ):
        """The headline bug: cancel a queued future, engine keeps serving."""
        plan = FaultPlan.parse("stall:batcher:0.2")
        with ScoringEngine(
            serve_trained, batch_window=0.0, cache_entries=0, faults=plan
        ) as engine:
            doomed = engine.submit(dev_utterances[0])
            cancelled = doomed.cancel()
            # Pre-fix, the cancelled future killed the batcher thread and
            # this second request hung forever.
            follow_up = engine.submit(dev_utterances[1])
            row = follow_up.result(timeout=60)
            assert row.shape == (len(engine.languages),)
            if cancelled:
                assert engine.metrics.counter("serve.cancelled").value >= 1
            assert engine.metrics.counter("serve.batcher.restarts").value == 0

    def test_admit_drops_cancelled_and_expired(
        self, serve_trained, dev_utterances
    ):
        engine = ScoringEngine(serve_trained, cache_entries=0)
        good = _Request(dev_utterances[0])
        gone = _Request(dev_utterances[1])
        assert gone.future.cancel()
        late = _Request(dev_utterances[2], deadline=0.0)
        assert engine._admit([good, gone, late]) == [good]
        with pytest.raises(DeadlineExceededError):
            late.future.result(timeout=1)
        assert engine.metrics.counter("serve.cancelled").value == 1
        assert engine.metrics.counter("serve.expired").value == 1
        # The survivor is RUNNING: a late client cancel can no longer
        # race the batcher's set_result.
        assert not good.future.cancel()

    def test_batcher_survives_injected_crashes(
        self, serve_trained, dev_utterances
    ):
        plan = FaultPlan.parse("error:batcher:2")
        with ScoringEngine(
            serve_trained, batch_window=0.0, cache_entries=0, faults=plan
        ) as engine:
            for i in range(2):
                future = engine.submit(dev_utterances[i])
                with pytest.raises(InjectedFault):
                    future.result(timeout=60)
            # Third batch: fault budget spent, thread must still be alive.
            future = engine.submit(dev_utterances[2])
            assert future.result(timeout=60).shape == (
                len(engine.languages),
            )
            assert engine.stats()["batcher_restarts"] == 2


class TestAdmissionControl:
    def test_queue_bound_rejects_excess(self, serve_trained, dev_utterances):
        plan = FaultPlan.parse("stall:batcher:1.0")
        engine = ScoringEngine(
            serve_trained,
            batch_window=0.0,
            max_batch=1,
            max_queue=2,
            cache_entries=0,
            faults=plan,
        ).start()
        inflight = engine.submit(dev_utterances[0])
        _wait_queue_empty(engine)  # batcher picked it up and is stalling
        queued = [engine.submit(u) for u in dev_utterances[1:3]]
        with pytest.raises(QueueFullError):
            engine.submit(dev_utterances[3])
        assert engine.metrics.counter("serve.rejected").value == 1
        plan.clear()  # lift the stall so close() drains quickly
        engine.close()
        for future in [inflight, *queued]:
            assert future.result(timeout=60).shape == (
                len(engine.languages),
            )
        assert engine.stats()["rejected"] == 1

    def test_invalid_hardening_knobs_rejected(self, serve_trained):
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, max_queue=0)
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, deadline=0.0)
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, breaker_threshold=0)
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, breaker_cooldown=-1.0)


class TestDeadlines:
    def test_queued_request_past_deadline_fails_fast(
        self, serve_trained, dev_utterances
    ):
        plan = FaultPlan.parse("stall:batcher:0.4")
        with ScoringEngine(
            serve_trained, batch_window=0.0, cache_entries=0, faults=plan
        ) as engine:
            slowpoke = engine.submit(dev_utterances[0])
            urgent = engine.submit(dev_utterances[1], deadline=0.05)
            with pytest.raises(DeadlineExceededError):
                urgent.result(timeout=60)
            # Undeadlined requests are still served.
            assert slowpoke.result(timeout=60).shape == (
                len(engine.languages),
            )
            assert engine.stats()["expired"] == 1

    def test_engine_default_deadline_applies(
        self, serve_trained, dev_utterances
    ):
        plan = FaultPlan.parse("stall:batcher:0.4")
        with ScoringEngine(
            serve_trained,
            batch_window=0.0,
            cache_entries=0,
            deadline=0.05,
            faults=plan,
        ) as engine:
            future = engine.submit(dev_utterances[0])
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=60)


class TestCircuitBreaker:
    def test_degrades_then_recovers_bitwise(
        self, serve_trained, dev_utterances
    ):
        utts = dev_utterances[:3]
        dead_fe = serve_trained.frontends[0].name
        healthy = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(utts)
        expected_degraded = _linear_reference(serve_trained, utts, {dead_fe})
        # The fault errors exactly twice; the breaker (threshold 2) must
        # then keep the frontend out on its own until the cooldown.
        plan = FaultPlan.parse(f"error:{dead_fe}:2")
        engine = ScoringEngine(
            serve_trained,
            breaker_threshold=2,
            breaker_cooldown=2.0,
            faults=plan,
        )

        first = engine.score_utterances(utts)  # failure 1: degraded batch
        assert engine.degraded
        assert engine.degraded_frontends() == [dead_fe]
        assert engine.breaker_states()[dead_fe] == "closed"
        assert np.array_equal(first, expected_degraded)
        # Partial stacks must not be cached.
        assert engine.stats()["cache"]["entries"] == 0

        second = engine.score_utterances(utts)  # failure 2: breaker trips
        assert np.array_equal(second, expected_degraded)
        assert engine.breaker_states()[dead_fe] == "open"
        assert engine.metrics.counter("serve.breaker.trips").value == 1
        trip_time = time.monotonic()

        # Within the cooldown the frontend is skipped without being
        # called at all (the fault budget is spent — a call would now
        # succeed, so healthy output here would mean the breaker leaked).
        third = engine.score_utterances(utts)
        if time.monotonic() - trip_time < 2.0:
            assert np.array_equal(third, expected_degraded)
            assert engine.breaker_states()[dead_fe] == "open"

        time.sleep(2.1)
        recovered = engine.score_utterances(utts)  # half-open probe passes
        assert np.array_equal(recovered, healthy)
        assert not engine.degraded
        assert engine.breaker_states()[dead_fe] == "closed"
        assert engine.degraded_frontends() == []
        assert engine.metrics.gauge("serve.breaker.open").value == 0

    def test_all_frontends_down_raises(self, serve_trained, dev_utterances):
        spec = ",".join(f"error:{fe.name}" for fe in serve_trained.frontends)
        engine = ScoringEngine(
            serve_trained,
            cache_entries=0,
            breaker_threshold=1,
            breaker_cooldown=60.0,
            faults=FaultPlan.parse(spec),
        )
        with pytest.raises(AllFrontendsDownError):
            engine.score_utterances(dev_utterances[:2])
        # Breakers are now all open: the next pass fails without calling
        # any frontend.
        with pytest.raises(AllFrontendsDownError):
            engine.score_utterances(dev_utterances[:2])
        future = engine.submit(dev_utterances[0])
        with pytest.raises(AllFrontendsDownError):
            future.result(timeout=60)
        engine.close()

    def test_cached_hits_survive_total_frontend_outage(
        self, serve_trained, dev_utterances
    ):
        utts = dev_utterances[:3]
        engine = ScoringEngine(serve_trained, breaker_threshold=1)
        warm = engine.score_utterances(utts)
        engine.faults = FaultPlan.parse(
            ",".join(f"error:{fe.name}" for fe in serve_trained.frontends)
        )
        # Fully cached batches never touch a frontend: exact scores even
        # with every recognizer down, and no degradation flag.
        again = engine.score_utterances(utts)
        assert np.array_equal(again, warm)
        assert not engine.degraded


class TestCloseSemantics:
    def test_close_fails_orphaned_requests(
        self, serve_trained, dev_utterances
    ):
        # Simulate a request stranded behind a dead batcher: queued, but
        # no thread will ever drain it.  close() must fail it, not drop it.
        engine = ScoringEngine(serve_trained)
        orphan = _Request(dev_utterances[0])
        engine._queue.append(orphan)
        engine.close()
        with pytest.raises(EngineClosedError):
            orphan.future.result(timeout=1)

    def test_scoring_after_close_raises_consistently(
        self, serve_trained, dev_utterances
    ):
        engine = ScoringEngine(serve_trained)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(dev_utterances[0])
        with pytest.raises(EngineClosedError):
            engine.score_utterances(dev_utterances[:1])
        with pytest.raises(EngineClosedError):
            engine.start()


class TestConcurrentTraffic:
    def test_sync_and_queued_paths_share_cache_without_races(
        self, serve_trained, dev_utterances
    ):
        """Thread hammer over one engine: exact counters, exact scores.

        The sync path (``score_utterances``) and the batcher both run
        ``_score_batch`` against one ``ScoreCache``, one ``StageTimer``
        and one metrics registry.  Audit result: every shared structure
        is individually locked (cache, LRU, timer, instruments, breaker
        state), and concurrent misses of the same digest at worst
        recompute the same deterministic value — so the invariants below
        must hold exactly, not approximately.
        """
        utts = dev_utterances
        reference = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(utts)
        by_id = {u.utt_id: reference[i] for i, u in enumerate(utts)}
        engine = ScoringEngine(
            serve_trained, batch_window=0.005, max_batch=4
        ).start()
        errors: list[str] = []

        def sync_worker():
            for _ in range(2):
                rows = engine.score_utterances(utts)
                if not np.array_equal(rows, reference):
                    errors.append("sync scores diverged")

        def submit_worker():
            futures = [engine.submit(u) for u in utts]
            for u, future in zip(utts, futures):
                row = future.result(timeout=120)
                if not np.array_equal(row, by_id[u.utt_id]):
                    errors.append(f"queued score diverged for {u.utt_id}")

        threads = [threading.Thread(target=sync_worker) for _ in range(3)]
        threads += [threading.Thread(target=submit_worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        total = 3 * 2 * len(utts) + 3 * len(utts)
        stats = engine.stats()
        # No lost updates, no double counting: one serve.requests tick
        # and exactly one cache lookup per scored utterance.
        assert stats["requests"] == total
        assert stats["cache"]["hits"] + stats["cache"]["misses"] == total
        assert stats["metrics"]["serve.requests"]["value"] == total
        engine.close()
