"""LRU bookkeeping and the thread-safe score cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.cache import ScoreCache
from repro.utils.lru import LruTracker


class TestLruTracker:
    def test_touch_orders_by_recency(self):
        lru = LruTracker()
        for key in "abc":
            lru.touch(key)
        lru.touch("a")
        assert lru.keys() == ["b", "c", "a"]

    def test_pop_excess_drops_least_recent(self):
        lru = LruTracker(max_entries=2)
        for key in "abc":
            lru.touch(key)
        assert lru.pop_excess() == ["a"]
        assert lru.keys() == ["b", "c"]

    def test_unbounded_never_evicts(self):
        lru = LruTracker()
        for key in range(100):
            lru.touch(key)
        assert lru.pop_excess() == []
        assert len(lru) == 100

    def test_seed_adopts_oldest_first(self):
        lru = LruTracker(max_entries=2)
        lru.seed(["old", "mid", "new"])
        assert len(lru) == 3  # seeding alone does not evict
        lru.touch("new")
        assert lru.pop_excess() == ["old"]

    def test_discard_and_contains(self):
        lru = LruTracker()
        lru.touch("x")
        assert "x" in lru
        lru.discard("x")
        lru.discard("x")  # no-op on absent keys
        assert "x" not in lru

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            LruTracker(max_entries=0)


class TestScoreCache:
    def test_hit_and_miss_accounting(self):
        cache = ScoreCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", np.ones((2, 3)))
        assert np.array_equal(cache.get("k"), np.ones((2, 3)))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_eviction_follows_recency(self):
        cache = ScoreCache(max_entries=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh "a"; "b" becomes least recent
        cache.put("c", np.full(1, 2.0))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_unbounded_cache(self):
        cache = ScoreCache(max_entries=None)
        for i in range(50):
            cache.put(str(i), np.zeros(1))
        assert len(cache) == 50
        assert cache.max_entries is None

    def test_entries_are_copied_and_frozen(self):
        cache = ScoreCache()
        source = np.ones((2, 3))
        cache.put("k", source)
        source[0, 0] = 99.0  # caller mutates its buffer afterwards
        stored = cache.get("k")
        assert stored[0, 0] == 1.0  # the cache kept its own copy
        with pytest.raises(ValueError):
            stored[0, 0] = -1.0  # hits are immutable

    def test_clear_keeps_counters(self):
        cache = ScoreCache()
        cache.put("k", np.zeros(1))
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_thread_safety_smoke(self):
        cache = ScoreCache(max_entries=16)

        def worker(tid: int) -> None:
            for i in range(200):
                key = f"{tid}-{i % 8}"
                if cache.get(key) is None:
                    cache.put(key, np.full(2, float(i)))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 4 * 200
