"""Shared fixtures for the serving tests: one small trained system.

Training (decode + SVM fit + fusion fit) is the expensive part, so a
single session-scoped system at a reduced scale — 4 languages, one
3-second duration — is shared by the artifact, engine and server tests.
"""

from __future__ import annotations

import pytest

from repro.core import build_system
from repro.core.config import ExperimentConfig, SystemConfig
from repro.corpus.splits import CorpusConfig
from repro.serve import export_trained, save_system


@pytest.fixture(scope="session")
def serve_config() -> ExperimentConfig:
    """A 4-language single-duration experiment config for serving tests."""
    return ExperimentConfig(
        corpus=CorpusConfig(
            n_languages=4,
            n_families=2,
            train_per_language=8,
            dev_per_language=6,
            test_per_language=6,
            durations=(3.0,),
            seed=1234,
        ),
        system=SystemConfig(
            orders=(1, 2), svm_max_epochs=12, mmi_iterations=10
        ),
    )


@pytest.fixture(scope="session")
def serve_system(serve_config):
    """The in-memory pipeline trained under ``serve_config``."""
    return build_system(serve_config)


@pytest.fixture(scope="session")
def serve_baseline(serve_system):
    """The baseline result of the shared system."""
    return serve_system.baseline()


@pytest.fixture(scope="session")
def serve_trained(serve_system, serve_baseline, serve_config):
    """The exported (score-ready) form of the shared system."""
    return export_trained(serve_system, [serve_baseline], serve_config)


@pytest.fixture(scope="session")
def artifact_dir(tmp_path_factory, serve_trained):
    """The shared system saved to disk once per session."""
    directory = tmp_path_factory.mktemp("artifact") / "system"
    save_system(directory, serve_trained, metadata={"origin": "tests"})
    return directory
