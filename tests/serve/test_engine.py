"""Micro-batching, caching and telemetry of the scoring engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ScoringEngine
from repro.serve.engine import STAGE_NAMES


@pytest.fixture()
def dev_utterances(serve_system):
    """A handful of dev utterances to score."""
    return list(serve_system.bundle.dev.utterances)[:6]


class TestScoring:
    def test_matches_offline_pipeline(self, serve_trained, serve_system,
                                      serve_baseline):
        utterances = list(serve_system.bundle.test[3.0].utterances)
        with ScoringEngine(serve_trained) as engine:
            scores = engine.score_utterances(utterances)
        reference = serve_system.fused_scores([serve_baseline], 3.0)
        assert np.array_equal(scores, reference)

    def test_empty_batch(self, serve_trained):
        engine = ScoringEngine(serve_trained)
        scores = engine.score_utterances([])
        assert scores.shape == (0, len(engine.languages))

    def test_chunking_matches_single_batch(self, serve_trained,
                                           dev_utterances):
        small = ScoringEngine(serve_trained, max_batch=2, cache_entries=0)
        big = ScoringEngine(serve_trained, max_batch=64, cache_entries=0)
        assert np.array_equal(
            small.score_utterances(dev_utterances),
            big.score_utterances(dev_utterances),
        )
        assert small.stats()["batches"] == 3
        assert big.stats()["batches"] == 1

    def test_predict_languages(self, serve_trained):
        engine = ScoringEngine(serve_trained)
        scores = np.eye(len(engine.languages))
        assert engine.predict_languages(scores) == list(engine.languages)


class TestCacheBehaviour:
    def test_warm_pass_hits_cache_and_skips_decode(self, serve_trained,
                                                   dev_utterances):
        engine = ScoringEngine(serve_trained)
        cold = engine.score_utterances(dev_utterances)
        decode_calls_cold = engine.stats()["stages"]["decoding"]["calls"]
        warm = engine.score_utterances(dev_utterances)
        stats = engine.stats()
        assert np.array_equal(cold, warm)
        assert stats["cache"]["misses"] == len(dev_utterances)
        assert stats["cache"]["hits"] == len(dev_utterances)
        # Warm pass must not have decoded anything.
        assert stats["stages"]["decoding"]["calls"] == decode_calls_cold

    def test_partial_hits_mix_cleanly(self, serve_trained, dev_utterances):
        reference = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(dev_utterances)
        engine = ScoringEngine(serve_trained)
        engine.score_utterances(dev_utterances[:3])
        mixed = engine.score_utterances(dev_utterances)
        assert np.array_equal(mixed, reference)
        assert engine.stats()["cache"]["hits"] == 3

    def test_cache_disabled(self, serve_trained, dev_utterances):
        engine = ScoringEngine(serve_trained, cache_entries=0)
        engine.score_utterances(dev_utterances[:2])
        engine.score_utterances(dev_utterances[:2])
        stats = engine.stats()["cache"]
        assert stats["hits"] == 0
        assert stats["entries"] == 0

    def test_bounded_cache_evicts(self, serve_trained, dev_utterances):
        engine = ScoringEngine(serve_trained, cache_entries=2)
        engine.score_utterances(dev_utterances[:4])
        assert engine.stats()["cache"]["entries"] == 2


class TestMicroBatching:
    def test_window_coalesces_submissions(self, serve_trained,
                                          dev_utterances):
        reference = ScoringEngine(
            serve_trained, cache_entries=0
        ).score_utterances(dev_utterances[:3])
        with ScoringEngine(
            serve_trained, batch_window=0.25, max_batch=64, cache_entries=0
        ) as engine:
            futures = [engine.submit(u) for u in dev_utterances[:3]]
            rows = [f.result(timeout=60) for f in futures]
            stats = engine.stats()
        assert stats["requests"] == 3
        assert stats["batches"] == 1  # all three fit in one window
        assert stats["mean_batch_size"] == pytest.approx(3.0)
        assert np.array_equal(np.vstack(rows), reference)

    def test_max_batch_flushes_before_window(self, serve_trained,
                                             dev_utterances):
        # With a 30 s window, only the max_batch trigger can flush the
        # first two requests this quickly.
        with ScoringEngine(
            serve_trained, batch_window=30.0, max_batch=2, cache_entries=0
        ) as engine:
            futures = [engine.submit(u) for u in dev_utterances[:2]]
            rows = [f.result(timeout=60) for f in futures]
            assert engine.stats()["batches"] >= 1
        assert all(row.shape == (len(engine.languages),) for row in rows)

    def test_close_drains_pending(self, serve_trained, dev_utterances):
        engine = ScoringEngine(
            serve_trained, batch_window=30.0, max_batch=64, cache_entries=0
        ).start()
        future = engine.submit(dev_utterances[0])
        engine.close()  # must flush the queued request, not drop it
        assert future.result(timeout=60).shape == (len(engine.languages),)

    def test_submit_after_close_raises(self, serve_trained, dev_utterances):
        engine = ScoringEngine(serve_trained).start()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(dev_utterances[0])

    def test_invalid_knobs_rejected(self, serve_trained):
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, batch_window=-0.1)
        with pytest.raises(ValueError):
            ScoringEngine(serve_trained, max_batch=0)


class TestStats:
    def test_stats_shape(self, serve_trained, dev_utterances):
        engine = ScoringEngine(serve_trained)
        engine.score_utterances(dev_utterances[:2])
        stats = engine.stats()
        assert stats["requests"] == 2
        assert set(stats["stages"]) == set(STAGE_NAMES)
        for entry in stats["stages"].values():
            assert entry["calls"] >= 1
            assert entry["p95_ms"] >= 0.0
        assert stats["latency_ms"]["p50"] >= 0.0
        assert stats["languages"] == list(engine.languages)

    def test_empty_stats_serialise_to_strict_json(self, serve_trained):
        import json

        stats = ScoringEngine(serve_trained).stats()
        decoded = json.loads(json.dumps(stats))
        # No samples yet: percentiles must be JSON null, never NaN.
        assert decoded["latency_ms"]["p50"] is None
        assert decoded["stages"]["decoding"]["p95_ms"] is None
