"""Artifact round-trip fidelity and load-time safety checks."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.backend.fusion import LdaMmiFusion
from repro.serve import (
    SCHEMA_VERSION,
    ArtifactError,
    ScoringEngine,
    TrainedSystem,
    config_fingerprint,
    export_trained,
    load_system,
    save_system,
)
from repro.serve.artifacts import _config_from_dict
from repro.svm.vsm import VSM

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestRoundTripFidelity:
    def test_loaded_test_scores_bitwise_identical(
        self, artifact_dir, serve_system, serve_baseline
    ):
        # The acceptance bar: export → load → score reproduces the
        # in-memory pipeline's fused test scores exactly.
        loaded = load_system(artifact_dir)
        utterances = list(serve_system.bundle.test[3.0].utterances)
        with ScoringEngine(loaded) as engine:
            scores = engine.score_utterances(utterances)
        reference = serve_system.fused_scores([serve_baseline], 3.0)
        assert np.array_equal(scores, reference)

    def test_loaded_dev_scores_bitwise_identical(
        self, artifact_dir, serve_system, serve_baseline
    ):
        loaded = load_system(artifact_dir)
        utterances = list(serve_system.bundle.dev.utterances)
        with ScoringEngine(loaded) as engine:
            scores = engine.score_utterances(utterances)
        reference = loaded.fusion.transform(
            [sub.dev for sub in serve_baseline.subsystems]
        )
        assert np.array_equal(scores, reference)

    def test_fresh_process_scores_identical(
        self, artifact_dir, serve_system, serve_baseline, tmp_path
    ):
        # Reload in a genuinely fresh interpreter via the CLI and compare
        # the saved score matrix bit for bit.
        out = tmp_path / "scores.npz"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "score",
                str(artifact_dir),
                "--tag",
                "test@3.0",
                "-o",
                str(out),
            ],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        from repro.utils.io import load_scores

        scores = load_scores(out)["scores"]
        reference = serve_system.fused_scores([serve_baseline], 3.0)
        assert np.array_equal(scores, reference)

    def test_loaded_metadata_and_languages(self, artifact_dir, serve_trained):
        loaded = load_system(artifact_dir)
        assert loaded.language_names == serve_trained.language_names
        assert [name for name, _ in loaded.subsystems] == [
            name for name, _ in serve_trained.subsystems
        ]
        assert [fe.name for fe in loaded.frontends] == [
            fe.name for fe in serve_trained.frontends
        ]


class TestManifest:
    def test_manifest_shape(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["metadata"] == {"origin": "tests"}
        for name, entry in manifest["files"].items():
            path = artifact_dir / name
            assert path.exists()
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] == path.stat().st_size
        assert "config.json" in manifest["files"]
        # Schema 2: fusion/vsm state is one mmap-able .npy per key.
        fusion_payloads = [
            name
            for name in manifest["files"]
            if name.startswith("fusion/") and name.endswith(".npy")
        ]
        assert fusion_payloads
        assert any(
            name.startswith("vsm__00_") for name in manifest["files"]
        )

    def test_config_fingerprint_survives_json_round_trip(
        self, serve_config, artifact_dir
    ):
        stored = _config_from_dict(
            json.loads((artifact_dir / "config.json").read_text())
        )
        assert config_fingerprint(stored) == config_fingerprint(serve_config)


def _copy_artifact(artifact_dir, tmp_path) -> Path:
    import shutil

    dst = tmp_path / "copy"
    shutil.copytree(artifact_dir, dst)
    return dst


class TestLoadSafety:
    def test_rejects_unknown_schema_version(self, artifact_dir, tmp_path):
        broken = _copy_artifact(artifact_dir, tmp_path)
        manifest_path = broken / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            load_system(broken)

    def test_rejects_corrupted_payload(self, artifact_dir, tmp_path):
        broken = _copy_artifact(artifact_dir, tmp_path)
        target = broken / "fusion" / "weights.npy"
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="corrupted"):
            load_system(broken)

    def test_mmap_load_rejects_truncated_payload(self, artifact_dir, tmp_path):
        # mmap mode skips hashing but still pins the manifest byte size.
        broken = _copy_artifact(artifact_dir, tmp_path)
        target = broken / "fusion" / "weights.npy"
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(ArtifactError, match="corrupted"):
            load_system(broken, mmap=True)

    def test_rejects_missing_payload(self, artifact_dir, tmp_path):
        broken = _copy_artifact(artifact_dir, tmp_path)
        (broken / "frontends.pkl").unlink()
        with pytest.raises(ArtifactError, match="missing"):
            load_system(broken)

    def test_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_system(tmp_path / "nowhere")

    def test_hard_fails_on_config_hash_mismatch(self, artifact_dir, tmp_path):
        # Tamper with config.json (different corpus seed) and re-stamp
        # its file hash so only the *config fingerprint* check can catch
        # the drift — that check must hard-fail.
        import hashlib

        broken = _copy_artifact(artifact_dir, tmp_path)
        config_path = broken / "config.json"
        payload = json.loads(config_path.read_text())
        payload["corpus"]["seed"] = payload["corpus"]["seed"] + 1
        config_path.write_text(json.dumps(payload))
        manifest_path = broken / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["config.json"] = {
            "sha256": hashlib.sha256(config_path.read_bytes()).hexdigest(),
            "bytes": config_path.stat().st_size,
        }
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="config hash mismatch"):
            load_system(broken)

    def test_rejects_unexpected_caller_config(
        self, artifact_dir, serve_config
    ):
        import dataclasses

        other = dataclasses.replace(
            serve_config,
            corpus=dataclasses.replace(serve_config.corpus, seed=999),
        )
        with pytest.raises(ArtifactError, match="different experiment"):
            load_system(artifact_dir, expected_config=other)

    def test_accepts_matching_caller_config(self, artifact_dir, serve_config):
        loaded = load_system(artifact_dir, expected_config=serve_config)
        assert isinstance(loaded, TrainedSystem)


import mmap as _mmap


def _base_chain(array: np.ndarray):
    """Walk ``ndarray.base`` to the owning object.

    For a mapped artifact the chain ends at the raw ``mmap.mmap`` buffer
    (views produced by ``np.asarray`` collapse past the ``np.memmap``
    wrapper straight to its buffer).
    """
    obj = array
    while getattr(obj, "base", None) is not None:
        obj = obj.base
    return obj


def _is_mapped(array: np.ndarray) -> bool:
    return isinstance(_base_chain(array), (np.memmap, _mmap.mmap))


class TestMmapLoading:
    def test_mmap_scores_bitwise_identical(
        self, artifact_dir, serve_system, serve_baseline
    ):
        loaded = load_system(artifact_dir, mmap=True)
        utterances = list(serve_system.bundle.test[3.0].utterances)
        with ScoringEngine(loaded) as engine:
            scores = engine.score_utterances(utterances)
        reference = serve_system.fused_scores([serve_baseline], 3.0)
        assert np.array_equal(scores, reference)

    def test_mmap_arrays_are_views_not_copies(self, artifact_dir):
        # The whole point of schema 2: every large array in the loaded
        # system must bottom out in an np.memmap — no heap copy was
        # made, so N processes mapping the same artifact share pages.
        loaded = load_system(artifact_dir, mmap=True)
        for _, vsm in loaded.subsystems:
            for model in vsm.ovr.models_:
                assert _is_mapped(model.weight_)
                assert not model.weight_.flags.writeable
        assert _is_mapped(loaded.fusion.weights_)

    def test_eager_load_keeps_heap_arrays(self, artifact_dir):
        loaded = load_system(artifact_dir)
        for _, vsm in loaded.subsystems:
            for model in vsm.ovr.models_:
                assert not _is_mapped(model.weight_)


class TestExportTrained:
    def test_requires_fitted_vsms(
        self, serve_system, serve_baseline, serve_config
    ):
        import copy

        stripped = copy.copy(serve_baseline)
        stripped.subsystems = [
            copy.copy(sub) for sub in serve_baseline.subsystems
        ]
        stripped.subsystems[0].vsm = None
        with pytest.raises(ValueError, match="no fitted VSM"):
            export_trained(serve_system, [stripped], serve_config)

    def test_rejects_unfitted_fusion(self, serve_trained, serve_config):
        with pytest.raises(ValueError, match="fitted"):
            TrainedSystem(
                config=serve_config,
                language_names=serve_trained.language_names,
                frontends=serve_trained.frontends,
                subsystems=serve_trained.subsystems,
                fusion=LdaMmiFusion(),
            )

    def test_rejects_unknown_subsystem_frontend(
        self, serve_trained, serve_config
    ):
        bad = [("NOT_A_FRONTEND", serve_trained.subsystems[0][1])] + list(
            serve_trained.subsystems[1:]
        )
        with pytest.raises(ValueError, match="not in frontend battery"):
            TrainedSystem(
                config=serve_config,
                language_names=serve_trained.language_names,
                frontends=serve_trained.frontends,
                subsystems=bad,
                fusion=serve_trained.fusion,
            )


class TestStateDicts:
    def test_vsm_state_round_trip(self, serve_system, serve_trained):
        fe_name, vsm = serve_trained.subsystems[0]
        frontend = serve_trained.frontend_by_name(fe_name)
        raw = serve_system.raw_matrix(frontend, "dev")
        rebuilt = VSM.from_state(vsm.state_dict())
        assert np.array_equal(
            rebuilt.score_matrix(raw), vsm.score_matrix(raw)
        )

    def test_fusion_state_round_trip(self, serve_trained, serve_baseline):
        rebuilt = LdaMmiFusion.from_state(serve_trained.fusion.state_dict())
        test_list = [sub.test[3.0] for sub in serve_baseline.subsystems]
        assert np.array_equal(
            rebuilt.transform(test_list),
            serve_trained.fusion.transform(test_list),
        )

    def test_fusion_state_requires_fit(self):
        with pytest.raises(RuntimeError):
            LdaMmiFusion().state_dict()


class TestVerifySystem:
    def test_clean_artifact_verifies(self, artifact_dir):
        from repro.serve import verify_system

        assert verify_system(artifact_dir) == []

    def test_same_length_bit_flip_in_npy_is_caught(
        self, artifact_dir, tmp_path
    ):
        # The exact corruption the mmap load path cannot see: one byte
        # flipped inside an array payload, file length unchanged.
        from repro.serve import verify_system

        broken = _copy_artifact(artifact_dir, tmp_path)
        target = broken / "fusion" / "weights.npy"
        data = bytearray(target.read_bytes())
        data[-1] ^= 0x01  # flip inside the array body, not the header
        target.write_bytes(bytes(data))
        # mmap load sees the right byte count and opens happily…
        loaded = load_system(broken, mmap=True)
        assert isinstance(loaded, TrainedSystem)
        # …the full audit does not.
        problems = verify_system(broken)
        assert problems == [
            {"file": "fusion/weights.npy", "problem": "checksum"}
        ]
        # And the eager (hashing) load refuses outright.
        with pytest.raises(ArtifactError, match="corrupted"):
            load_system(broken)

    def test_missing_payload_reported(self, artifact_dir, tmp_path):
        from repro.serve import verify_system

        broken = _copy_artifact(artifact_dir, tmp_path)
        (broken / "frontends.pkl").unlink()
        assert {"file": "frontends.pkl", "problem": "missing"} in (
            verify_system(broken)
        )

    def test_missing_manifest_raises(self, tmp_path):
        from repro.serve import verify_system

        with pytest.raises(ArtifactError, match="manifest"):
            verify_system(tmp_path / "nowhere")

    def test_cli_exec_verify_detects_saved_system(
        self, artifact_dir, tmp_path
    ):
        # `repro exec verify <saved-system>` routes to the full audit.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "exec", "verify",
             str(artifact_dir)],
            capture_output=True, text=True, env=_subprocess_env(),
        )
        assert result.returncode == 0, result.stderr
        assert "all payloads verified" in result.stdout

    def test_cli_exec_verify_flags_corruption(self, artifact_dir, tmp_path):
        broken = _copy_artifact(artifact_dir, tmp_path)
        target = broken / "fusion" / "weights.npy"
        data = bytearray(target.read_bytes())
        data[-1] ^= 0x01
        target.write_bytes(bytes(data))
        result = subprocess.run(
            [sys.executable, "-m", "repro", "exec", "verify", str(broken)],
            capture_output=True, text=True, env=_subprocess_env(),
        )
        assert result.returncode == 1
        assert "CORRUPT (checksum): fusion/weights.npy" in result.stdout
