"""Campaign fault tolerance: retries, quarantine and frontend degradation.

Exercises the offline escalation ladder end to end on the tiny corpus:
transient faults absorbed by retries reproduce the clean run exactly;
persistently failing utterances are quarantined (and their products
never persist under clean content keys); a persistently dead frontend
is dropped with the Eq. 20 fusion weights renormalized over the
survivors — the offline analogue of serve's circuit breakers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.fusion import subsystem_weights
from repro.core.campaign import run_campaign
from repro.core.config import ExperimentConfig, SystemConfig
from repro.core.pipeline import PhonotacticSystem
from repro.exec.store import ArtifactStore
from repro.faults import AllFrontendsFailedError, RetryPolicy
from repro.faults.injection import ENV_VAR, reset_ambient_plan
from repro.obs import trace
from repro.obs.metrics import default_registry


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Fresh metrics and no inherited fault plan around every test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_ambient_plan()
    default_registry().reset()
    yield
    reset_ambient_plan()
    default_registry().reset()


@pytest.fixture(scope="module")
def trio_frontends(tiny_bundle):
    """Three frontends, so dropping one leaves a real battery."""
    from repro.frontend import FrontendSpec, build_frontends

    specs = (
        FrontendSpec("FE_A", "dnn", 24, tau=0.5, base_error=0.10),
        FrontendSpec("FE_B", "gmm", 30, tau=0.55, base_error=0.12),
        FrontendSpec("FE_C", "dnn", 20, tau=0.6, base_error=0.15),
    )
    return build_frontends(tiny_bundle, specs=specs, top_k=3)


def _config() -> SystemConfig:
    return SystemConfig(orders=(1, 2), svm_max_epochs=10, mmi_iterations=5)


def _make(bundle, frontends, **kwargs) -> PhonotacticSystem:
    return PhonotacticSystem(bundle, list(frontends), _config(), **kwargs)


class _FlakyFrontend:
    """Delegating frontend whose decode fails for chosen utterances."""

    def __init__(self, inner, bad_ids):
        self._inner = inner
        self._bad = set(bad_ids)
        self.name = inner.name
        self.phone_set = inner.phone_set

    def decode(self, utterance, rng):
        if utterance.utt_id in self._bad:
            raise ValueError(f"undecodable utterance {utterance.utt_id}")
        return self._inner.decode(utterance, rng)


class TestRetry:
    def test_transient_faults_reproduce_clean_run(
        self, tiny_bundle, tiny_frontends, monkeypatch
    ):
        clean = _make(tiny_bundle, tiny_frontends).baseline()
        monkeypatch.setenv(ENV_VAR, "error:phi:2,error:svm_train:1")
        reset_ambient_plan()
        system = _make(
            tiny_bundle,
            tiny_frontends,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        faulted = system.baseline()
        assert faulted.names == clean.names
        for a, b in zip(clean.subsystems, faulted.subsystems):
            np.testing.assert_array_equal(a.dev, b.dev)
            for d in clean.durations:
                np.testing.assert_array_equal(a.test[d], b.test[d])
        assert (
            default_registry().counter("exec.retry.attempts").value >= 3
        )


class TestQuarantine:
    def test_bad_utterances_skipped_and_products_not_persisted(
        self, tiny_bundle, tiny_frontends, tmp_path
    ):
        bad_ids = [
            u.utt_id for u in tiny_bundle.train.utterances[:2]
        ]
        flaky = _FlakyFrontend(tiny_frontends[0], bad_ids)
        store = ArtifactStore(tmp_path / "store")
        system = _make(
            tiny_bundle,
            [flaky, tiny_frontends[1]],
            store=store,
            on_error="quarantine",
        )
        baseline = system.baseline()
        assert baseline.names == [flaky.name, tiny_frontends[1].name]
        assert system.quarantined[(flaky.name, "train")] == bad_ids
        # The flaky frontend's products are tainted (built from partial
        # decodes) and must not answer later runs under clean content
        # keys; the healthy frontend's products persist normally.
        phi_key = system._stage_key(
            "phi", frontend=flaky.name, corpus="train"
        )
        assert not store.has(phi_key)
        assert not store.has(
            system._stage_key(
                "svm_train",
                frontend=flaky.name,
                model="baseline",
                seed_offset=0,
            )
        )
        assert store.has(
            system._stage_key(
                "svm_train",
                frontend=tiny_frontends[1].name,
                model="baseline",
                seed_offset=1,
            )
        )

    def test_too_many_failures_abort(self, tiny_bundle, tiny_frontends):
        bad_ids = [u.utt_id for u in tiny_bundle.train.utterances[:8]]
        flaky = _FlakyFrontend(tiny_frontends[0], bad_ids)
        system = _make(
            tiny_bundle,
            [flaky, tiny_frontends[1]],
            on_error="quarantine",
            max_quarantine_fraction=0.1,
        )
        from repro.utils.parallel import QuarantineExceededError

        with pytest.raises(QuarantineExceededError):
            system.baseline()


class TestDegrade:
    def test_dead_frontend_dropped_and_fusion_renormalized(
        self, tiny_bundle, trio_frontends, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "error:phi/FE_C:100000")
        reset_ambient_plan()
        system = _make(
            tiny_bundle,
            trio_frontends,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_error="degrade",
        )
        trace.start_trace("campaign")
        try:
            baseline = system.baseline()
        finally:
            root = trace.stop_trace()
        assert set(system.degraded) == {"FE_C"}
        assert [fe.name for fe in system.frontends] == ["FE_A", "FE_B"]
        assert baseline.names == ["FE_A", "FE_B"]
        # The drop lands on the trace root, hence in runlog manifests.
        assert root is not None
        assert root.attrs["degraded_frontends"] == ["FE_C"]
        assert (
            default_registry().counter("exec.degraded.frontends").value
            == 1
        )
        # Baseline has no fit counts: Eq. 20 weights renormalize to
        # uniform over exactly the survivors.
        fused = system.fused_scores([baseline], 10.0)
        expected = 0.5 * (
            baseline.subsystems[0].test[10.0]
            + baseline.subsystems[1].test[10.0]
        )
        np.testing.assert_allclose(fused, expected)

    def test_degraded_dba_fusion_matches_eq20(
        self, tiny_bundle, trio_frontends, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "error:phi/FE_C:100000")
        reset_ambient_plan()
        system = _make(
            tiny_bundle,
            trio_frontends,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_error="degrade",
        )
        baseline = system.baseline()
        dba = system.dba(2, "M1", baseline)
        assert dba.names == ["FE_A", "FE_B"]
        assert dba.fit_counts.shape == (2,)
        weights = subsystem_weights(dba.fit_counts)
        expected = sum(
            w * sub.test[3.0]
            for w, sub in zip(weights, dba.subsystems)
        )
        np.testing.assert_allclose(
            system.fused_scores([dba], 3.0), expected
        )

    def test_full_campaign_finishes_degraded(
        self, tiny_bundle, trio_frontends, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "error:phi/FE_C:100000")
        reset_ambient_plan()
        system = _make(
            tiny_bundle,
            trio_frontends,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_error="degrade",
        )
        result = run_campaign(
            ExperimentConfig(vote_thresholds=(2,)),
            system=system,
            variants=("M1",),
            fusion_threshold=2,
        )
        assert result.frontends == ["FE_A", "FE_B"]
        assert set(result.degraded) == {"FE_C"}
        assert "InjectedFault" in result.degraded["FE_C"]
        text = result.to_text()
        assert "FE_A" in text and "FE_C" not in text
        result.table4_text()  # renders over the survivors only

    def test_losing_every_frontend_raises(
        self, tiny_bundle, tiny_frontends, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "error:phi:100000")
        reset_ambient_plan()
        system = _make(
            tiny_bundle, tiny_frontends, on_error="degrade"
        )
        with pytest.raises(AllFrontendsFailedError):
            system.baseline()

    def test_invalid_on_error_rejected(self, tiny_bundle, tiny_frontends):
        with pytest.raises(ValueError, match="on_error"):
            _make(tiny_bundle, tiny_frontends, on_error="explode")
