"""Tests for DBA pseudo-label selection and training-set assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import format_table1, trdba_composition
from repro.core.dba import (
    PseudoLabels,
    build_dba_training_set,
    select_pseudo_labels,
)
from repro.utils.sparse import SparseMatrix, SparseVector


def sparse_eye(n: int, dim: int | None = None) -> SparseMatrix:
    dim = dim or n
    rows = [
        SparseVector.from_dict(dim, {i % dim: float(i + 1)}) for i in range(n)
    ]
    return SparseMatrix.from_rows(rows, dim=dim)


class TestSelectPseudoLabels:
    def test_threshold_selects_winners(self):
        counts = np.array(
            [
                [3, 0, 0],
                [1, 1, 0],
                [0, 0, 5],
                [0, 2, 0],
            ]
        )
        pseudo = select_pseudo_labels(counts, 2)
        np.testing.assert_array_equal(pseudo.indices, [0, 2, 3])
        np.testing.assert_array_equal(pseudo.labels, [0, 2, 1])
        np.testing.assert_array_equal(pseudo.votes, [3, 5, 2])

    def test_threshold_is_inclusive(self):
        counts = np.array([[3, 0]])
        assert len(select_pseudo_labels(counts, 3)) == 1
        assert len(select_pseudo_labels(counts, 4)) == 0

    def test_monotone_in_threshold(self, rng):
        counts = rng.integers(0, 7, size=(60, 5))
        sizes = [
            len(select_pseudo_labels(counts, v)) for v in range(1, 7)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_error_rate(self):
        counts = np.array([[4, 0], [0, 4]])
        pseudo = select_pseudo_labels(counts, 3)
        assert pseudo.error_rate(np.array([0, 0])) == pytest.approx(0.5)
        assert pseudo.error_rate(np.array([0, 1])) == pytest.approx(0.0)

    def test_empty_selection_error_nan(self):
        pseudo = select_pseudo_labels(np.zeros((3, 2), dtype=int), 1)
        assert len(pseudo) == 0
        assert np.isnan(pseudo.error_rate(np.zeros(3, dtype=int)))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            select_pseudo_labels(np.zeros((2, 2)), 0)


class TestBuildTrainingSet:
    def _setup(self):
        train = sparse_eye(4, dim=6)
        y_train = np.array([0, 1, 0, 1])
        test = sparse_eye(5, dim=6)
        pseudo = PseudoLabels(
            indices=np.array([1, 3]),
            labels=np.array([1, 0]),
            votes=np.array([4, 5]),
        )
        return train, y_train, test, pseudo

    def test_m1_only_pseudo(self):
        train, y_train, test, pseudo = self._setup()
        x, y = build_dba_training_set("M1", train, y_train, test, pseudo)
        assert x.n_rows == 2
        np.testing.assert_array_equal(y, [1, 0])
        np.testing.assert_allclose(x.row(0).to_dense(), test.row(1).to_dense())

    def test_m2_pseudo_plus_train(self):
        train, y_train, test, pseudo = self._setup()
        x, y = build_dba_training_set("M2", train, y_train, test, pseudo)
        assert x.n_rows == 6
        np.testing.assert_array_equal(y, [1, 0, 0, 1, 0, 1])

    def test_empty_pseudo_falls_back_to_train(self):
        train, y_train, test, _ = self._setup()
        empty = PseudoLabels(
            indices=np.empty(0, np.int64),
            labels=np.empty(0, np.int64),
            votes=np.empty(0, np.int64),
        )
        x, y = build_dba_training_set("M1", train, y_train, test, empty)
        assert x is train
        np.testing.assert_array_equal(y, y_train)

    def test_invalid_variant(self):
        train, y_train, test, pseudo = self._setup()
        with pytest.raises(ValueError):
            build_dba_training_set("M3", train, y_train, test, pseudo)

    def test_index_out_of_range(self):
        train, y_train, test, _ = self._setup()
        bad = PseudoLabels(
            indices=np.array([99]),
            labels=np.array([0]),
            votes=np.array([6]),
        )
        with pytest.raises(ValueError):
            build_dba_training_set("M1", train, y_train, test, bad)


class TestTable1Analysis:
    def test_composition_rows(self, rng):
        counts = rng.integers(0, 7, size=(100, 4))
        truth = rng.integers(0, 4, size=100)
        rows = trdba_composition(counts, truth)
        assert [r.threshold for r in rows] == [6, 5, 4, 3, 2, 1]
        sizes = [r.n_selected for r in rows]
        assert sizes == sorted(sizes)  # grows as V decreases

    def test_format_table1(self, rng):
        counts = rng.integers(0, 7, size=(50, 3))
        truth = rng.integers(0, 3, size=50)
        text = format_table1(trdba_composition(counts, truth))
        assert "V = 6" in text and "V = 1" in text
        assert "number" in text and "error rate" in text
