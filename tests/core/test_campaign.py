"""Tests for the one-call campaign runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import CampaignResult, run_campaign
from repro.core.config import SystemConfig
from repro.core.pipeline import PhonotacticSystem


@pytest.fixture(scope="module")
def campaign(tiny_bundle, tiny_frontends, tiny_config):
    """A tiny full campaign (2 frontends, 2 durations, V in (2, 1))."""
    from dataclasses import replace

    from repro.core.config import ExperimentConfig

    system = PhonotacticSystem(
        tiny_bundle,
        tiny_frontends,
        SystemConfig(orders=(1, 2), svm_max_epochs=12, mmi_iterations=8),
    )
    config = replace(
        ExperimentConfig(corpus=tiny_config), vote_thresholds=(2, 1)
    )
    messages: list[str] = []
    result = run_campaign(
        config,
        system=system,
        variants=("M1", "M2"),
        fusion_threshold=1,
        progress=messages.append,
    )
    return result, messages


class TestRunCampaign:
    def test_grid_populated(self, campaign, tiny_bundle):
        result, _ = campaign
        names = result.frontends
        assert names == ["FE_A", "FE_B"]
        for duration in result.durations:
            for name in names:
                assert (name, duration) in result.baseline_cells
                assert (name, duration) in result.dba_cells
                for threshold in result.thresholds:
                    for variant in ("M1", "M2"):
                        assert (
                            name,
                            duration,
                            threshold,
                        ) in result.sweep_cells[variant]
            assert duration in result.baseline_fused
            assert duration in result.dba_fused

    def test_table1_rows(self, campaign):
        result, _ = campaign
        assert [r.threshold for r in result.table1] == [2, 1]

    def test_progress_reported(self, campaign):
        _, messages = campaign
        assert any("baseline" in m for m in messages)
        assert any("DBA-M1" in m for m in messages)

    def test_cells_are_percentages(self, campaign):
        result, _ = campaign
        for cell in result.baseline_cells.values():
            assert 0.0 <= cell[0] <= 100.0
            assert 0.0 <= cell[1] <= 100.0


class TestRendering:
    def test_to_text_contains_all_tables(self, campaign):
        result, _ = campaign
        text = result.to_text()
        assert "Table 1" in text
        assert "DBA-M1 sweep" in text and "DBA-M2 sweep" in text
        assert "Table 4" in text
        assert "fusion" in text

    def test_sweep_unknown_variant(self, campaign):
        result, _ = campaign
        with pytest.raises(KeyError):
            result.sweep_text("M7")

    def test_save(self, campaign, tmp_path):
        result, _ = campaign
        out = result.save(tmp_path / "campaign")
        assert (out / "table1.txt").exists()
        assert (out / "sweep_M1.txt").exists()
        assert (out / "sweep_M2.txt").exists()
        assert (out / "table4.txt").exists()
        assert (out / "campaign.txt").read_text().count("Table") >= 3


class TestSingleVariantCampaign:
    def test_m1_only(self, tiny_bundle, tiny_frontends, tiny_config):
        from dataclasses import replace

        from repro.core.config import ExperimentConfig

        system = PhonotacticSystem(
            tiny_bundle,
            tiny_frontends,
            SystemConfig(orders=(1, 2), svm_max_epochs=10, mmi_iterations=5),
        )
        config = replace(
            ExperimentConfig(corpus=tiny_config), vote_thresholds=(1,)
        )
        result = run_campaign(
            config, system=system, variants=("M1",), fusion_threshold=1
        )
        assert set(result.sweep_cells) == {"M1"}
        text = result.to_text()
        assert "DBA-M1 sweep" in text and "DBA-M2" not in text
        for duration in result.durations:
            assert duration in result.dba_fused
