"""Tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.core.config import (
    ExperimentConfig,
    SystemConfig,
    bench_scale,
    smoke_scale,
    with_duration,
)


class TestSystemConfig:
    def test_defaults_valid(self):
        SystemConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"orders": ()},
            {"top_k": 0},
            {"svm_C": 0.0},
            {"svm_loss": "l3"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs)


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.frontend_mode == "confusion"
        assert cfg.vote_thresholds == (6, 5, 4, 3, 2, 1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig(frontend_mode="hybrid")

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(vote_thresholds=())
        with pytest.raises(ValueError):
            ExperimentConfig(vote_thresholds=(0,))


class TestScales:
    def test_bench_scale(self):
        cfg = bench_scale()
        assert cfg.corpus.n_languages == 10
        assert cfg.corpus.durations == (30.0, 10.0, 3.0)

    def test_smoke_scale_smaller(self):
        smoke, bench = smoke_scale(), bench_scale()
        assert smoke.corpus.n_languages < bench.corpus.n_languages
        assert (
            smoke.corpus.train_per_language < bench.corpus.train_per_language
        )

    def test_seed_propagates(self):
        assert bench_scale(seed=7).corpus.seed == 7

    def test_with_duration(self):
        cfg = with_duration(bench_scale(), (10.0,))
        assert cfg.corpus.durations == (10.0,)
        assert cfg.corpus.n_languages == bench_scale().corpus.n_languages
