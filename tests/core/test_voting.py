"""Tests for subsystem voting (Eqs. 10-13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.voting import subsystem_votes, vote_count_matrix, vote_fit_counts


class TestSubsystemVotes:
    def test_eq13_criterion(self):
        scores = np.array(
            [
                [2.0, -1.0, -0.5],   # confident -> vote for 0
                [1.0, 0.5, -1.0],    # two positive -> no vote
                [-1.0, -2.0, -0.1],  # all negative -> no vote
                [-0.5, 3.0, -0.2],   # confident -> vote for 1
            ]
        )
        votes = subsystem_votes(scores)
        expected = np.zeros((4, 3), dtype=bool)
        expected[0, 0] = True
        expected[3, 1] = True
        np.testing.assert_array_equal(votes, expected)

    def test_at_most_one_vote_per_row(self, rng):
        votes = subsystem_votes(rng.normal(size=(50, 6)))
        assert np.all(votes.sum(axis=1) <= 1)

    def test_zero_score_blocks_vote(self):
        # Winner positive but another language exactly at 0 (not < 0).
        scores = np.array([[1.0, 0.0, -1.0]])
        assert not subsystem_votes(scores).any()

    def test_zero_winner_blocks_vote(self):
        scores = np.array([[0.0, -1.0, -1.0]])
        assert not subsystem_votes(scores).any()

    def test_needs_two_languages(self):
        with pytest.raises(ValueError):
            subsystem_votes(np.ones((3, 1)))


class TestVoteCounting:
    def test_counts_sum_over_subsystems(self):
        confident = np.array([[2.0, -1.0], [-1.0, 2.0]])
        unsure = np.array([[0.5, 0.2], [0.1, 0.6]])
        counts = vote_count_matrix([confident, confident, unsure])
        np.testing.assert_array_equal(counts, [[2, 0], [0, 2]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vote_count_matrix([np.ones((2, 2)), np.ones((3, 2))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vote_count_matrix([])

    def test_max_count_is_subsystem_count(self, rng):
        mats = [rng.normal(size=(30, 4)) for _ in range(5)]
        counts = vote_count_matrix(mats)
        assert counts.max() <= 5
        assert counts.min() >= 0


class TestFitCounts:
    def test_counts_voting_rows(self):
        confident = np.array([[2.0, -1.0], [-1.0, 2.0], [0.1, 0.2]])
        silent = np.zeros((3, 2)) - 1.0
        m = vote_fit_counts([confident, silent])
        np.testing.assert_array_equal(m, [2, 0])
