"""Tests for vote diagnostics and the SVG DET renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diagnostics import VoteReport, vote_overlap_matrix, vote_report
from repro.metrics.svg import det_curves_svg, save_det_svg


def confident_scores(labels: np.ndarray, k: int, subset=None) -> np.ndarray:
    """Scores voting correctly on `subset` rows (default: all)."""
    m = labels.size
    scores = -np.ones((m, k))
    rows = np.arange(m) if subset is None else np.asarray(subset)
    scores[rows, labels[rows]] = 2.0
    return scores


class TestVoteReport:
    def test_perfect_subsystem(self):
        labels = np.array([0, 1, 2, 0])
        report = vote_report([confident_scores(labels, 3)], labels, ["A"])
        assert report.n_votes[0] == 4
        assert report.coverage[0] == pytest.approx(1.0)
        assert report.precision[0] == pytest.approx(1.0)

    def test_partial_coverage(self):
        labels = np.array([0, 1, 2, 0])
        scores = confident_scores(labels, 3, subset=[0, 2])
        report = vote_report([scores], labels)
        assert report.n_votes[0] == 2
        assert report.coverage[0] == pytest.approx(0.5)

    def test_wrong_votes_lower_precision(self):
        labels = np.array([0, 0, 0, 0])
        wrong = np.array([1, 1, 0, 0])
        scores = confident_scores(wrong, 2)
        report = vote_report([scores], labels)
        assert report.precision[0] == pytest.approx(0.5)

    def test_silent_subsystem_nan_precision(self):
        labels = np.array([0, 1])
        silent = -np.ones((2, 2))
        report = vote_report([silent], labels)
        assert report.n_votes[0] == 0
        assert np.isnan(report.precision[0])

    def test_to_text(self):
        labels = np.array([0, 1])
        report = vote_report(
            [confident_scores(labels, 2)], labels, ["HU"]
        )
        text = report.to_text()
        assert "HU" in text and "precision" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            vote_report([], np.array([0]))
        with pytest.raises(ValueError):
            vote_report([np.zeros((3, 2))], np.array([0]))
        with pytest.raises(ValueError):
            vote_report(
                [np.zeros((2, 2))], np.array([0, 1]), names=["a", "b"]
            )


class TestVoteOverlap:
    def test_identical_subsystems_full_overlap(self):
        labels = np.array([0, 1, 2])
        s = confident_scores(labels, 3)
        overlap = vote_overlap_matrix([s, s.copy()])
        np.testing.assert_allclose(overlap, 1.0)

    def test_disjoint_votes_zero_overlap(self):
        labels = np.array([0, 1, 2, 0])
        a = confident_scores(labels, 3, subset=[0, 1])
        b = confident_scores(labels, 3, subset=[2, 3])
        overlap = vote_overlap_matrix([a, b])
        assert overlap[0, 1] == pytest.approx(0.0)
        assert overlap[0, 0] == pytest.approx(1.0)

    def test_conflicting_votes_not_agreement(self):
        labels_a = np.array([0, 0])
        labels_b = np.array([1, 1])
        a = confident_scores(labels_a, 2)
        b = confident_scores(labels_b, 2)
        overlap = vote_overlap_matrix([a, b])
        assert overlap[0, 1] == pytest.approx(0.0)  # vote different langs

    def test_symmetry(self, rng):
        mats = [rng.normal(size=(40, 4)) for _ in range(3)]
        overlap = vote_overlap_matrix(mats)
        np.testing.assert_allclose(overlap, overlap.T)


class TestDetSvg:
    def _curves(self, rng):
        from repro.metrics.det import det_curve

        tar = rng.normal(1.5, 1.0, 300)
        non = rng.normal(0.0, 1.0, 300)
        return {
            "PPRVSM": det_curve(tar, non),
            "DBA": det_curve(tar + 0.4, non),
        }

    def test_valid_svg_with_curves(self, rng):
        svg = det_curves_svg(self._curves(rng))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "PPRVSM" in svg and "DBA" in svg
        assert "Miss probability" in svg

    def test_save(self, rng, tmp_path):
        path = save_det_svg(tmp_path / "fig" / "det.svg", self._curves(rng))
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            det_curves_svg({})
