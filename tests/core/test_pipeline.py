"""Mechanics tests for the PPRVSM/DBA pipeline (shapes, caching, wiring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pipeline import (
    BaselineResult,
    DBAResult,
    PhonotacticSystem,
    calibrate_scores,
    evaluate_scores,
)
from repro.utils.timing import StageTimer


@pytest.fixture(scope="module")
def system(tiny_bundle, tiny_frontends):
    return PhonotacticSystem(
        tiny_bundle,
        tiny_frontends,
        SystemConfig(orders=(1, 2), svm_max_epochs=15, mmi_iterations=10),
        timer=StageTimer(),
    )


@pytest.fixture(scope="module")
def baseline(system):
    return system.baseline()


@pytest.fixture(scope="module")
def dba_result(system, baseline):
    return system.dba(1, "M2", baseline)


class TestCorpusPlumbing:
    def test_corpus_tags(self, system, tiny_bundle):
        assert system.corpus_for("train") is tiny_bundle.train
        assert system.corpus_for("dev") is tiny_bundle.dev
        assert system.corpus_for("test@10.0") is tiny_bundle.test[10.0]

    def test_unknown_tags(self, system):
        with pytest.raises(KeyError):
            system.corpus_for("validation")
        with pytest.raises(KeyError):
            system.corpus_for("test@99.0")

    def test_labels_shape(self, system, tiny_bundle):
        labels = system.labels_for("train")
        assert labels.shape == (len(tiny_bundle.train),)
        assert labels.max() < len(tiny_bundle.registry)

    def test_pooled_labels(self, system, tiny_bundle):
        pooled = system.pooled_test_labels()
        expected = sum(len(c) for c in tiny_bundle.test.values())
        assert pooled.shape == (expected,)


class TestCaching:
    def test_raw_matrix_cached(self, system, tiny_frontends):
        fe = tiny_frontends[0]
        a = system.raw_matrix(fe, "train")
        b = system.raw_matrix(fe, "train")
        assert a is b

    def test_matrix_shapes(self, system, tiny_frontends, tiny_bundle):
        fe = tiny_frontends[0]
        m = system.raw_matrix(fe, "dev")
        assert m.n_rows == len(tiny_bundle.dev)

    def test_pooled_test_matrix(self, system, tiny_frontends, tiny_bundle):
        fe = tiny_frontends[0]
        pooled = system.pooled_test_matrix(fe)
        expected = sum(len(c) for c in tiny_bundle.test.values())
        assert pooled.n_rows == expected

    def test_timer_recorded_stages(self, system, baseline):
        stages = set(system.timer.stages())
        assert {"decoding", "sv_generation", "svm_training"} <= stages


class TestBaseline:
    def test_result_structure(self, baseline, system, tiny_bundle):
        assert isinstance(baseline, BaselineResult)
        assert baseline.names == [fe.name for fe in system.frontends]
        for duration, corpus in tiny_bundle.test.items():
            for scores in baseline.test_scores(duration):
                assert scores.shape == (len(corpus), len(tiny_bundle.registry))

    def test_pooled_scores_stack_durations(self, baseline, tiny_bundle):
        pooled = baseline.pooled_test_scores()
        total = sum(len(c) for c in tiny_bundle.test.values())
        for mat in pooled:
            assert mat.shape[0] == total

    def test_beats_chance_on_train_conditions(self, baseline, system):
        # Dev shares the training condition; argmax accuracy must beat
        # chance clearly for both frontends.
        dev_labels = system.labels_for("dev")
        k = len(system.bundle.registry)
        for dev in baseline.dev_scores:
            acc = np.mean(np.argmax(dev, axis=1) == dev_labels)
            assert acc > 2.0 / k


class TestDBA:
    def test_result_structure(self, dba_result, tiny_bundle):
        assert isinstance(dba_result, DBAResult)
        assert dba_result.variant == "M2"
        assert dba_result.threshold == 1
        assert dba_result.vote_counts.shape[0] == sum(
            len(c) for c in tiny_bundle.test.values()
        )
        assert dba_result.fit_counts.shape == (2,)

    def test_pseudo_indices_in_pool(self, dba_result, tiny_bundle):
        total = sum(len(c) for c in tiny_bundle.test.values())
        if len(dba_result.pseudo):
            assert dba_result.pseudo.indices.max() < total

    def test_m1_variant_runs(self, system, baseline):
        result = system.dba(1, "M1", baseline)
        assert result.variant == "M1"

    def test_default_baseline_computed(self, system):
        result = system.dba(2, "M2")
        assert isinstance(result, DBAResult)

    def test_deterministic(self, system, baseline):
        a = system.dba(1, "M2", baseline)
        b = system.dba(1, "M2", baseline)
        np.testing.assert_allclose(
            a.test_scores(10.0)[0], b.test_scores(10.0)[0]
        )


class TestEvaluation:
    def test_frontend_metrics(self, system, baseline):
        metrics = system.frontend_metrics(baseline, 10.0)
        assert set(metrics) == {"FE_A", "FE_B"}
        for eer, c_avg in metrics.values():
            assert 0.0 <= eer <= 100.0
            assert 0.0 <= c_avg <= 100.0

    def test_fused_metrics(self, system, baseline, dba_result):
        eer, c_avg = system.fused_metrics([baseline, dba_result], 10.0)
        assert 0.0 <= eer <= 100.0
        assert 0.0 <= c_avg <= 100.0

    def test_fused_scores_shape(self, system, baseline, tiny_bundle):
        fused = system.fused_scores([baseline], 3.0)
        assert fused.shape == (
            len(tiny_bundle.test[3.0]),
            len(tiny_bundle.registry),
        )

    def test_calibrate_and_evaluate_roundtrip(self, system, baseline):
        dev_labels = system.labels_for("dev")
        test_labels = system.labels_for("test@10.0")
        calibrated = calibrate_scores(
            baseline.dev_scores, dev_labels, baseline.test_scores(10.0)
        )
        eer, c_avg = evaluate_scores(calibrated, test_labels)
        assert 0.0 <= eer <= 100.0


class TestValidation:
    def test_needs_frontends(self, tiny_bundle):
        with pytest.raises(ValueError):
            PhonotacticSystem(tiny_bundle, [])

    def test_unique_frontend_names(self, tiny_bundle, tiny_frontends):
        with pytest.raises(ValueError):
            PhonotacticSystem(
                tiny_bundle, [tiny_frontends[0], tiny_frontends[0]]
            )


class TestMatrixCachePersistence:
    def test_disk_cache_roundtrip(self, tiny_bundle, tiny_frontends, tmp_path):
        import numpy as np

        from repro.utils.io import MatrixCache

        cache = MatrixCache(tmp_path / "sv")
        sys_a = PhonotacticSystem(
            tiny_bundle,
            tiny_frontends,
            SystemConfig(orders=(1, 2)),
            matrix_cache=cache,
        )
        m_first = sys_a.raw_matrix(tiny_frontends[0], "dev")
        assert cache.has(tiny_frontends[0].name, "dev")
        # A fresh system with the same cache must reload, not recompute.
        sys_b = PhonotacticSystem(
            tiny_bundle,
            tiny_frontends,
            SystemConfig(orders=(1, 2)),
            matrix_cache=cache,
        )
        m_second = sys_b.raw_matrix(tiny_frontends[0], "dev")
        np.testing.assert_allclose(m_first.to_dense(), m_second.to_dense())
        assert sys_b.timer.calls("decoding") == 0  # no decode happened


class TestParallelDecodeEquivalence:
    @pytest.mark.slow
    def test_workers_do_not_change_results(self, tiny_bundle, tiny_frontends):
        serial = PhonotacticSystem(
            tiny_bundle, tiny_frontends, SystemConfig(orders=(1, 2), workers=1)
        )
        parallel = PhonotacticSystem(
            tiny_bundle, tiny_frontends, SystemConfig(orders=(1, 2), workers=2)
        )
        fe_s, fe_p = serial.frontends[0], parallel.frontends[0]
        # The train corpus is large enough to cross pmap's parallel
        # threshold, so this genuinely exercises the process pool.
        m_serial = serial.raw_matrix(fe_s, "train")
        m_parallel = parallel.raw_matrix(fe_p, "train")
        assert m_serial.n_rows == m_parallel.n_rows
        np.testing.assert_array_equal(m_serial.indptr, m_parallel.indptr)
        np.testing.assert_array_equal(m_serial.indices, m_parallel.indices)
        np.testing.assert_allclose(m_serial.values, m_parallel.values)
