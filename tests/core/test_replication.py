"""Tests for multi-seed replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.replication import ReplicationSummary, replicate_headline
from repro.corpus import CorpusConfig


def tiny_factory(seed: int) -> ExperimentConfig:
    from repro.core.config import SystemConfig

    return ExperimentConfig(
        corpus=CorpusConfig(
            n_languages=4,
            n_families=2,
            train_per_language=10,
            dev_per_language=4,
            test_per_language=10,
            durations=(10.0,),
            seed=seed,
        ),
        system=SystemConfig(orders=(1, 2), svm_max_epochs=12, mmi_iterations=8),
    )


class TestReplicationSummary:
    def _summary(self) -> ReplicationSummary:
        s = ReplicationSummary(threshold=3, variant="M2")
        s.per_seed[1] = {10.0: (20.0, 15.0)}
        s.per_seed[2] = {10.0: (22.0, 18.0)}
        s.per_seed[3] = {10.0: (18.0, 19.0)}  # one loss
        return s

    def test_aggregate(self):
        agg = self._summary().aggregate(10.0)
        assert agg["baseline_mean"] == pytest.approx(20.0)
        assert agg["dba_mean"] == pytest.approx((15 + 18 + 19) / 3)
        assert agg["dba_wins"] == 2
        assert agg["n_seeds"] == 3

    def test_to_text(self):
        text = self._summary().to_text()
        assert "3 seeds" in text
        assert "2/3" in text
        assert "10s" in text


class TestReplicateHeadline:
    @pytest.mark.slow
    def test_two_seed_replication(self):
        messages: list[str] = []
        summary = replicate_headline(
            seeds=(501, 502),
            config_factory=tiny_factory,
            threshold=1,
            variant="M2",
            progress=messages.append,
        )
        assert summary.seeds == [501, 502]
        assert summary.durations == [10.0]
        agg = summary.aggregate(10.0)
        assert agg["n_seeds"] == 2
        assert 0.0 <= agg["baseline_mean"] <= 100.0
        assert 0.0 <= agg["dba_mean"] <= 100.0
        assert len(messages) == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate_headline(seeds=())
