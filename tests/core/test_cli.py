"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["dba"])
        assert args.scale == "smoke"
        assert args.threshold == 3
        assert args.variant == "M2"

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--scale", "galactic"])

    def test_rejects_bad_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dba", "--variant", "M9"])

    def test_threshold_short_flag(self):
        args = build_parser().parse_args(["dba", "-V", "5"])
        assert args.threshold == 5

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("info", "baseline", "dba", "table1", "sweep", "table4"):
            args = parser.parse_args([cmd])
            assert callable(args.func)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "languages: 5" in out
        assert "EN_DNN" in out

    @pytest.mark.slow
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "V = 6" in out and "error rate" in out

    @pytest.mark.slow
    def test_dba_command(self, capsys):
        assert main(["dba", "--scale", "smoke", "-V", "3"]) == 0
        out = capsys.readouterr().out
        assert "PPRVSM" in out and "DBA-M2" in out and "pool:" in out


class TestStoreFlag:
    @pytest.mark.parametrize(
        "command",
        ["baseline", "dba", "sweep", "table4", "campaign", "replicate"],
    )
    def test_store_flag_available(self, command):
        args = build_parser().parse_args([command, "--store", "/tmp/s"])
        assert args.store == "/tmp/s"

    @pytest.mark.parametrize("command", ["baseline", "campaign"])
    def test_store_defaults_to_none(self, command):
        assert build_parser().parse_args([command]).store is None

    def test_info_has_no_store_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--store", "/tmp/s"])

    @pytest.mark.slow
    def test_baseline_resumes_from_store(self, tmp_path, capsys):
        from repro.obs.metrics import default_registry

        store_dir = str(tmp_path / "store")
        assert main(["baseline", "--scale", "smoke", "--store", store_dir]) == 0
        registry = default_registry()
        registry.reset()
        assert main(["baseline", "--scale", "smoke", "--store", store_dir]) == 0
        assert registry.counter("exec.stage.phi.executed").value == 0
        assert registry.counter("exec.store.hits").value > 0
        out = capsys.readouterr().out
        assert "PPRVSM" in out
