"""Tests for paper-layout report rendering."""

from __future__ import annotations

import pytest

from repro.core.reporting import (
    AM_FAMILY,
    format_dba_table,
    format_duration,
    format_table4,
    has_interior_minimum,
)


class TestFormatHelpers:
    def test_format_duration(self):
        assert format_duration(30.0) == "30s"
        assert format_duration(3.0) == "3s"

    def test_am_family_covers_paper_frontends(self):
        assert set(AM_FAMILY) == {"HU", "RU", "CZ", "EN_DNN", "MA", "EN_GMM"}


class TestDbaTable:
    def _cells(self):
        frontends = ["HU", "EN_DNN"]
        durations = (10.0, 3.0)
        thresholds = (3, 2, 1)
        baseline = {
            (n, d): (10.0 + i, 11.0 + i)
            for i, (n, d) in enumerate(
                (n, d) for n in frontends for d in durations
            )
        }
        dba = {
            (n, d, v): (5.0 + v, 6.0 + v)
            for n in frontends
            for d in durations
            for v in thresholds
        }
        return frontends, durations, thresholds, baseline, dba

    def test_contains_all_cells(self):
        frontends, durations, thresholds, baseline, dba = self._cells()
        text = format_dba_table(frontends, durations, thresholds, baseline, dba)
        assert "ANN-HMM HU" in text
        assert "DNN-HMM EN_DNN" in text
        assert "V=3" in text and "V=1" in text
        assert "10s" in text and "3s" in text
        assert "EER" in text and "Cavg" in text

    def test_best_marked(self):
        frontends, durations, thresholds, baseline, dba = self._cells()
        text = format_dba_table(frontends, durations, thresholds, baseline, dba)
        # Best value in every sweep is V=1 -> 6.00; it must carry the star.
        assert "6.00*" in text

    def test_missing_cell_raises(self):
        frontends, durations, thresholds, baseline, dba = self._cells()
        del dba[("HU", 10.0, 3)]
        with pytest.raises(KeyError):
            format_dba_table(frontends, durations, thresholds, baseline, dba)


class TestTable4:
    def test_layout(self):
        frontends = ["HU"]
        durations = (30.0,)
        base_cells = {("HU", 30.0): (2.4, 2.3)}
        base_fused = {30.0: (1.1, 1.2)}
        dba_cells = {("HU", 30.0): (1.9, 1.8)}
        dba_fused = {30.0: (1.0, 0.9)}
        text = format_table4(
            frontends, durations, base_cells, base_fused, dba_cells, dba_fused
        )
        assert "base ANN-HMM HU" in text
        assert "DBA " in text
        assert text.count("fusion") >= 2
        assert "1.10/1.20" in text


class TestInteriorMinimum:
    def test_u_shape_detected(self):
        assert has_interior_minimum([5.0, 3.0, 2.0, 3.5, 6.0])

    def test_monotone_rejected(self):
        assert not has_interior_minimum([5.0, 4.0, 3.0, 2.0])
        assert not has_interior_minimum([2.0, 3.0, 4.0])

    def test_edge_minimum_rejected(self):
        assert not has_interior_minimum([1.0, 2.0, 3.0, 0.5][::-1])
