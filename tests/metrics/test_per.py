"""Tests for phone error rate / Levenshtein alignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.per import EditCounts, levenshtein_alignment, phone_error_rate


class TestLevenshtein:
    def test_identical(self):
        counts = levenshtein_alignment(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert counts.errors == 0
        assert counts.error_rate == 0.0

    def test_single_substitution(self):
        counts = levenshtein_alignment(np.array([1, 2, 3]), np.array([1, 9, 3]))
        assert (counts.substitutions, counts.insertions, counts.deletions) == (
            1,
            0,
            0,
        )

    def test_single_insertion(self):
        counts = levenshtein_alignment(np.array([1, 2]), np.array([1, 9, 2]))
        assert counts.insertions == 1
        assert counts.errors == 1

    def test_single_deletion(self):
        counts = levenshtein_alignment(np.array([1, 2, 3]), np.array([1, 3]))
        assert counts.deletions == 1
        assert counts.errors == 1

    def test_empty_reference(self):
        counts = levenshtein_alignment(np.array([]), np.array([1, 2]))
        assert counts.insertions == 2
        assert counts.error_rate == float("inf")

    def test_empty_hypothesis(self):
        counts = levenshtein_alignment(np.array([1, 2]), np.array([]))
        assert counts.deletions == 2
        assert counts.error_rate == 1.0

    def test_both_empty(self):
        assert levenshtein_alignment(np.array([]), np.array([])).errors == 0

    def test_known_distance(self):
        # kitten -> sitting (classic): 3 edits.
        ref = np.array([ord(c) for c in "kitten"])
        hyp = np.array([ord(c) for c in "sitting"])
        assert levenshtein_alignment(ref, hyp).errors == 3

    @given(
        st.lists(st.integers(0, 5), max_size=12),
        st.lists(st.integers(0, 5), max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_metric_properties(self, a, b):
        a, b = np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)
        d_ab = levenshtein_alignment(a, b).errors
        d_ba = levenshtein_alignment(b, a).errors
        assert d_ab == d_ba  # symmetry of the distance
        assert d_ab >= abs(a.size - b.size)  # length lower bound
        assert d_ab <= max(a.size, b.size)  # replacement upper bound
        if a.size == b.size:
            assert d_ab <= int(np.sum(a != b))

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=10),
        st.lists(st.integers(0, 5), max_size=10),
        st.lists(st.integers(0, 5), max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        a = np.array(a, dtype=np.int64)
        b = np.array(b, dtype=np.int64)
        c = np.array(c, dtype=np.int64)
        d = lambda x, y: levenshtein_alignment(x, y).errors
        assert d(a, c) <= d(a, b) + d(b, c)

    def test_counts_decompose_distance(self):
        rng = np.random.default_rng(0)
        ref = rng.integers(0, 4, 30)
        hyp = rng.integers(0, 4, 25)
        counts = levenshtein_alignment(ref, hyp)
        assert counts.errors >= abs(30 - 25)
        # I - D must account for the length difference.
        assert counts.insertions - counts.deletions == hyp.size - ref.size


class TestPhoneErrorRate:
    def test_simple(self):
        assert phone_error_rate(
            np.array([1, 2, 3, 4]), np.array([1, 2, 9, 4])
        ) == pytest.approx(0.25)

    def test_can_exceed_one(self):
        assert phone_error_rate(np.array([1]), np.array([2, 3, 4])) > 1.0


class TestEditCounts:
    def test_error_rate_zero_reference(self):
        assert EditCounts(0, 0, 0, 0).error_rate == 0.0
