"""Tests for DET curve computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.det import det_curve, det_points_probit, render_det_ascii


class TestDetCurve:
    def test_monotone_tradeoff(self, rng):
        tar = rng.normal(1.5, 1.0, 300)
        non = rng.normal(0.0, 1.0, 300)
        p_fa, p_miss = det_curve(tar, non)
        assert np.all(np.diff(p_miss) >= 0)
        assert np.all(np.diff(p_fa) <= 0)

    def test_endpoints(self, rng):
        tar = rng.normal(2.0, 1.0, 50)
        non = rng.normal(0.0, 1.0, 50)
        p_fa, p_miss = det_curve(tar, non)
        assert p_miss[0] == 0.0  # lowest threshold misses nothing
        assert p_fa[-1] <= 1.0 / 50 + 1e-12

    def test_probabilities_in_range(self, rng):
        p_fa, p_miss = det_curve(rng.normal(size=40), rng.normal(size=40))
        assert np.all((0 <= p_fa) & (p_fa <= 1))
        assert np.all((0 <= p_miss) & (p_miss <= 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            det_curve(np.array([]), np.array([1.0]))


class TestProbitPoints:
    def test_finite(self, rng):
        scores = rng.normal(size=(100, 3))
        labels = rng.integers(0, 3, 100)
        scores[np.arange(100), labels] += 2.0
        x, y = det_points_probit(scores, labels)
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))

    def test_better_system_lower_curve(self, rng):
        labels = rng.integers(0, 3, 300)

        def system(quality):
            scores = rng.normal(size=(300, 3))
            scores[np.arange(300), labels] += quality
            return det_points_probit(scores, labels)

        _, miss_good = system(4.0)
        _, miss_bad = system(1.0)
        assert np.median(miss_good) < np.median(miss_bad)


class TestAsciiRender:
    def test_renders_all_curves(self, rng):
        tar = rng.normal(1.0, 1.0, 200)
        non = rng.normal(0.0, 1.0, 200)
        curves = {
            "baseline": det_curve(tar, non),
            "dba": det_curve(tar + 0.5, non),
        }
        art = render_det_ascii(curves)
        assert "b" in art and "d" in art
        assert "baseline" in art and "dba" in art
        assert len(art.splitlines()) > 10
