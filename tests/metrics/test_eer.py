"""Tests for EER computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.eer import eer_from_matrix, equal_error_rate, split_trials


class TestSplitTrials:
    def test_counts(self):
        scores = np.arange(12.0).reshape(4, 3)
        labels = np.array([0, 1, 2, 0])
        tar, non = split_trials(scores, labels)
        assert tar.size == 4
        assert non.size == 8

    def test_values(self):
        scores = np.array([[1.0, 2.0], [3.0, 4.0]])
        tar, non = split_trials(scores, np.array([0, 1]))
        np.testing.assert_array_equal(np.sort(tar), [1.0, 4.0])
        np.testing.assert_array_equal(np.sort(non), [2.0, 3.0])

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            split_trials(np.zeros((2, 2)), np.array([0, 5]))


class TestEqualErrorRate:
    def test_perfect_separation(self):
        assert equal_error_rate(
            np.array([2.0, 3.0, 4.0]), np.array([-1.0, 0.0, 1.0])
        ) == pytest.approx(0.0, abs=1e-9)

    def test_total_confusion(self):
        # Identical distributions: EER = 0.5.
        scores = np.linspace(0, 1, 50)
        assert equal_error_rate(scores, scores) == pytest.approx(0.5, abs=0.05)

    def test_reversed_scores_give_high_eer(self):
        eer = equal_error_rate(
            np.array([-3.0, -2.0, -2.5]), np.array([2.0, 3.0, 2.5])
        )
        assert eer > 0.9

    def test_known_overlap(self):
        # One of four targets below all nontargets; one of four nontargets
        # above all targets -> EER 0.25.
        tar = np.array([-2.0, 1.0, 2.0, 3.0])
        non = np.array([-3.0, -2.5, -2.2, 0.0])
        assert equal_error_rate(tar, non) == pytest.approx(0.25, abs=0.01)

    def test_gaussian_analytic(self):
        # Equal-variance Gaussians at distance d: EER = Phi(-d/2).
        rng = np.random.default_rng(0)
        d = 2.0
        tar = rng.normal(d, 1.0, 20000)
        non = rng.normal(0.0, 1.0, 20000)
        from scipy.stats import norm

        expected = norm.cdf(-d / 2)
        assert equal_error_rate(tar, non) == pytest.approx(expected, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            equal_error_rate(np.array([]), np.array([1.0]))

    @given(
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=40),
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_shift_invariance(self, tar, non):
        # Round to 3 decimals so the +3.3 shift cannot collapse denormal
        # near-ties into exact ties (a float artefact, not an EER property).
        tar = np.round(np.array(tar), 3)
        non = np.round(np.array(non), 3)
        eer = equal_error_rate(tar, non)
        assert 0.0 <= eer <= 1.0
        shifted = equal_error_rate(tar + 3.3, non + 3.3)
        assert eer == pytest.approx(shifted, abs=1e-9)

    @given(
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=40),
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, tar, non):
        tar, non = np.array(tar), np.array(non)
        assert equal_error_rate(tar, non) == pytest.approx(
            equal_error_rate(tar * 2.5, non * 2.5), abs=1e-9
        )


class TestEerFromMatrix:
    def test_perfect_matrix(self):
        scores = np.array([[5.0, -5.0], [-5.0, 5.0]])
        assert eer_from_matrix(scores, np.array([0, 1])) == pytest.approx(0.0)

    def test_random_matrix_near_half(self, rng):
        scores = rng.normal(size=(400, 5))
        labels = rng.integers(0, 5, 400)
        assert 0.4 < eer_from_matrix(scores, labels) < 0.6
