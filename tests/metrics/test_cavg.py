"""Tests for NIST LRE 2009 C_avg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.cavg import cavg, min_cavg


class TestCavg:
    def test_perfect_system_zero_cost(self):
        scores = np.array([[5.0, -5.0], [-5.0, 5.0]])
        assert cavg(scores, np.array([0, 1])) == pytest.approx(0.0)

    def test_all_rejected_cost_half_p_target(self):
        # Everything below threshold: every target missed, no false alarms.
        scores = -np.ones((4, 2))
        labels = np.array([0, 0, 1, 1])
        assert cavg(scores, labels) == pytest.approx(0.5)

    def test_all_accepted_cost(self):
        # Everything accepted: no misses, all false alarms.
        scores = np.ones((4, 2))
        labels = np.array([0, 0, 1, 1])
        # (1 - P_tar)/(K-1) * 1 summed over K-1 others = 0.5.
        assert cavg(scores, labels) == pytest.approx(0.5)

    def test_hand_computed_case(self):
        # K=2; language 0: 1 of 2 targets missed; language 1 perfect;
        # one false alarm of lang-1 utterance on detector 0.
        scores = np.array(
            [
                [1.0, -1.0],   # lang 0, accepted by 0 only: correct
                [-1.0, -1.0],  # lang 0, rejected by both: miss for 0
                [1.0, 1.0],    # lang 1, accepted by both: FA on 0
                [-1.0, 1.0],   # lang 1, correct
            ]
        )
        labels = np.array([0, 0, 1, 1])
        # Detector 0: P_miss = 1/2, P_fa(0,1) = 1/2.
        # Detector 1: P_miss = 0,  P_fa(1,0) = 0.
        expected = 0.5 * (0.5 * 0.5 + 0.5 * 0.5)  # only detector 0 costs
        assert cavg(scores, labels) == pytest.approx(expected)

    def test_threshold_shifts_decisions(self):
        scores = np.array([[0.4, -1.0], [-1.0, 0.4]])
        labels = np.array([0, 1])
        assert cavg(scores, labels, threshold=0.0) == pytest.approx(0.0)
        assert cavg(scores, labels, threshold=0.5) == pytest.approx(0.5)

    def test_custom_costs_and_priors(self):
        scores = -np.ones((2, 2))
        labels = np.array([0, 1])
        # All missed: cost = C_miss * P_tar.
        assert cavg(
            scores, labels, p_target=0.3, c_miss=2.0
        ) == pytest.approx(0.6)

    def test_needs_two_languages(self):
        with pytest.raises(ValueError):
            cavg(np.ones((2, 1)), np.array([0, 0]))

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            cavg(np.ones((3, 2)), np.array([0, 1]))


class TestMinCavg:
    def test_min_leq_actual(self, rng):
        scores = rng.normal(size=(100, 4))
        labels = rng.integers(0, 4, 100)
        scores[np.arange(100), labels] += 2.0
        assert min_cavg(scores, labels) <= cavg(scores, labels) + 1e-12

    def test_miscalibrated_scores_recovered(self):
        # Perfect ranking but a huge offset: actual C_avg is bad, min is 0.
        scores = np.array([[9.0, 5.0], [5.0, 9.0]]) + 100.0
        labels = np.array([0, 1])
        assert cavg(scores, labels) == pytest.approx(0.5)  # all accepted
        assert min_cavg(scores, labels) == pytest.approx(0.0)
