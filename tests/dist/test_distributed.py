"""repro.dist end to end: real worker processes over one store.

These are the slowest dist tests (spawned interpreters pay import +
corpus-build cost), so the campaign config is tiny and the reference
tables are computed once per module.  The correctness bar everywhere
is *bitwise* table equality with the single-process run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.campaign import run_campaign
from repro.core.config import ExperimentConfig, SystemConfig
from repro.corpus.splits import CorpusConfig
from repro.dist import (
    CampaignJournal,
    DistError,
    DistributedCampaign,
    attach_workers,
)

VARIANTS = ("M2",)
FUSION = 2


def _dist_config() -> ExperimentConfig:
    """A seconds-scale experiment: 4 languages, one test duration."""
    return ExperimentConfig(
        corpus=CorpusConfig(
            n_languages=4,
            n_families=2,
            train_per_language=8,
            dev_per_language=4,
            test_per_language=8,
            durations=(3.0,),
            seed=77,
        ),
        system=SystemConfig(orders=(1, 2), svm_max_epochs=10, mmi_iterations=5),
        vote_thresholds=(2,),
    )


@pytest.fixture(scope="module")
def reference_tables() -> str:
    """Single-process tables for the shared tiny config."""
    result = run_campaign(
        _dist_config(), variants=VARIANTS, fusion_threshold=FUSION
    )
    return result.to_text()


def _coordinator_main(store_dir: str, campaign_id: str) -> None:
    """Child-process coordinator for the kill/resume test (spawnable)."""
    DistributedCampaign(
        _dist_config(),
        store=store_dir,
        workers=2,
        campaign_id=campaign_id,
        variants=VARIANTS,
        fusion_threshold=FUSION,
        lease_ttl=2.0,
    ).run(join_timeout=300)


def _wait_for_pids_to_exit(pids, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    for pid in pids:
        while time.monotonic() < deadline:
            try:
                os.kill(int(pid), 0)
            except OSError:
                break  # gone
            time.sleep(0.1)


class TestDistributedCampaign:
    def test_two_workers_bitwise_match_then_resume(
        self, tmp_path, reference_tables
    ):
        store = tmp_path / "store"
        outcome = DistributedCampaign(
            _dist_config(),
            store=store,
            workers=2,
            variants=VARIANTS,
            fusion_threshold=FUSION,
            lease_ttl=3.0,
        ).run(join_timeout=300)
        assert outcome.tables == reference_tables
        assert len(outcome.workers_done) == 2
        assert outcome.workers_failed == ()
        assert outcome.resumed is False
        assert outcome.metrics["dist.claims"] > 0
        # Resume against the warm store: one worker, everything cached.
        again = DistributedCampaign(
            _dist_config(),
            store=store,
            workers=1,
            variants=VARIANTS,
            fusion_threshold=FUSION,
            lease_ttl=3.0,
        ).run(join_timeout=300)
        assert again.resumed is True
        assert again.campaign_id == outcome.campaign_id
        assert again.tables == reference_tables
        journal = CampaignJournal(again.directory)
        starts = journal.events("coordinator_start")
        resumes = journal.events("coordinator_resume")
        assert len(starts) == 1 and len(resumes) == 1

    def test_coordinator_sigkill_then_replacement_finishes(
        self, tmp_path, reference_tables
    ):
        """Kill the *coordinator* mid-campaign; a replacement attaches.

        Everything durable lives under the store, so the replacement
        sees the journal, joins the lease board's campaign and
        concludes with the same bitwise tables — the orphaned workers
        of the dead coordinator just keep computing into the store.
        """
        store = tmp_path / "store"
        campaign_id = "kill-the-boss"
        ctx = multiprocessing.get_context("spawn")
        coordinator = ctx.Process(
            target=_coordinator_main,
            args=(str(store), campaign_id),
            daemon=False,
        )
        coordinator.start()
        journal = CampaignJournal(store / "dist" / campaign_id)
        deadline = time.monotonic() + 180.0
        # Wait until the campaign is truly mid-flight (stages claimed).
        while time.monotonic() < deadline:
            if journal.events("claim"):
                break
            time.sleep(0.1)
        else:
            pytest.fail("campaign never started claiming stages")
        os.kill(coordinator.pid, signal.SIGKILL)
        coordinator.join()
        assert coordinator.exitcode == -signal.SIGKILL
        # The replacement coordinator attaches and finishes the run.
        outcome = DistributedCampaign(
            _dist_config(),
            store=store,
            workers=1,
            campaign_id=campaign_id,
            variants=VARIANTS,
            fusion_threshold=FUSION,
            lease_ttl=2.0,
        ).run(join_timeout=300)
        assert outcome.resumed is True
        assert outcome.tables == reference_tables
        assert len(outcome.workers_done) >= 1
        assert journal.events("coordinator_resume")
        # Let the dead coordinator's orphans drain before tmp cleanup.
        orphan_pids = [
            ev.get("pid") for ev in journal.events("worker_start")
        ]
        _wait_for_pids_to_exit(orphan_pids)

    def test_attach_workers_requires_a_published_campaign(self, tmp_path):
        with pytest.raises(DistError, match="nothing to join"):
            attach_workers(tmp_path / "store", "no-such-campaign", 1)

    def test_campaign_dir_collision_with_other_config(self, tmp_path):
        store = tmp_path / "store"
        campaign = DistributedCampaign(
            _dist_config(),
            store=store,
            workers=1,
            campaign_id="shared-id",
            variants=VARIANTS,
            fusion_threshold=FUSION,
        )
        CampaignJournal(campaign.campaign_dir)  # directory exists
        campaign_journal = CampaignJournal(campaign.campaign_dir)
        campaign_journal.write_spec({**campaign.spec, "fingerprint": "f" * 64})
        with pytest.raises(DistError, match="fingerprint"):
            campaign.run(join_timeout=60)
