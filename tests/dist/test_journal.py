"""CampaignJournal: spec exactly-once, torn-line tolerance, tables."""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.core.config import smoke_scale
from repro.dist import (
    CampaignJournal,
    DistError,
    build_spec,
    config_from_spec,
)


@pytest.fixture()
def spec():
    return build_spec(
        smoke_scale(7),
        variants=("M1", "M2"),
        fusion_threshold=3,
        retries=2,
        on_error="degrade",
        lease_ttl=4.0,
        poison_threshold=3,
    )


class TestSpec:
    def test_create_then_attach(self, tmp_path, spec):
        journal = CampaignJournal(tmp_path / "c")
        assert journal.write_spec(spec) is True
        assert journal.write_spec(spec) is False  # attach, not clobber
        stored = journal.spec()
        assert stored["fingerprint"] == spec["fingerprint"]
        assert stored["lease_ttl"] == 4.0
        assert tuple(stored["variants"]) == ("M1", "M2")

    def test_config_round_trips_through_spec(self, tmp_path, spec):
        from repro.serve.artifacts import config_fingerprint

        journal = CampaignJournal(tmp_path / "c")
        journal.write_spec(spec)
        rebuilt = config_from_spec(journal.spec())
        assert config_fingerprint(rebuilt) == spec["fingerprint"]

    def test_fingerprint_mismatch_refuses_attach(self, tmp_path, spec):
        journal = CampaignJournal(tmp_path / "c")
        journal.write_spec(spec)
        other = build_spec(
            smoke_scale(8),  # different seed, different experiment
            variants=("M1", "M2"),
            fusion_threshold=3,
            lease_ttl=4.0,
            poison_threshold=3,
        )
        with pytest.raises(DistError, match="fingerprint"):
            journal.write_spec(other)

    def test_missing_spec_is_an_error(self, tmp_path):
        with pytest.raises(DistError, match="nothing to join"):
            CampaignJournal(tmp_path / "c").spec()


class TestEventLog:
    def test_append_and_filter(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        journal.append("worker_start", worker="w0")
        journal.append("claim", worker="w0", key="k1")
        journal.append("worker_done", worker="w0", tables_sha256="s")
        assert [e["event"] for e in journal.events()] == [
            "worker_start",
            "claim",
            "worker_done",
        ]
        done = journal.events("worker_done")
        assert len(done) == 1
        assert done[0]["worker"] == "w0"
        assert done[0]["ts"] > 0

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        journal.append("worker_start", worker="w0")
        # A writer SIGKILLed mid-append, plus stray junk.
        with open(journal.journal_path, "a") as fh:
            fh.write('{"event": "worker_done", "worker": "w1"')  # torn
            fh.write("\nnot json at all\n")
            fh.write('"a bare string"\n')
        journal.append("worker_done", worker="w2", tables_sha256="s")
        assert [e["event"] for e in journal.events()] == [
            "worker_start",
            "worker_done",
        ]
        assert journal.events("worker_done")[0]["worker"] == "w2"

    def test_missing_journal_reads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "c").events() == []


class TestTables:
    def test_record_and_read_back(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        text = "== Table 4 ==\nrow\n"
        sha = journal.record_tables("w0-123", text)
        assert sha == hashlib.sha256(text.encode()).hexdigest()
        assert journal.tables() == {"w0-123": text}

    def test_worker_id_is_sanitized(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        journal.record_tables("host:9/w0", "t")
        assert list(journal.tables()) == ["host-9_w0"]

    def test_no_temp_files_survive(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        journal.record_tables("w0", "t")
        leftovers = [
            name
            for name in os.listdir(journal.directory / "tables")
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_journal_lines_are_valid_json(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c")
        journal.append("claim", worker="w0")
        for line in journal.journal_path.read_text().splitlines():
            json.loads(line)
