"""LeaseBoard protocol: claim, renew, steal, poison — no real workers.

Every scenario here drives two or more boards (one per pretend worker)
over a single lease directory, with heartbeats off so expiry is
scripted by backdating lease mtimes instead of sleeping through TTLs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.dist import leases as leases_mod
from repro.faults import PoisonedStageError

KEY = "a" * 64


def _backdate(board, key: str, by: float = 120.0) -> None:
    """Age a lease's mtime past any TTL used in these tests."""
    path = board._lease_path(key)
    stale = time.time() - by
    os.utime(path, (stale, stale))


def _counter(registry, name: str) -> float:
    snap = registry.snapshot().get(name, {})
    return float(snap.get("value", 0.0))


class TestClaim:
    def test_claim_is_exclusive(self, make_board):
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY, family="phi") is True
        assert b.try_claim(KEY, family="phi") is False
        assert a.held() == [KEY]
        assert b.held() == []

    def test_completed_release_frees_the_key(self, make_board):
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY)
        a.release(KEY, completed=True)
        assert a.held() == []
        assert b.try_claim(KEY) is True

    def test_release_without_hold_is_noop(self, make_board):
        a = make_board("w0")
        a.release(KEY, completed=True)  # never claimed; must not raise
        assert a.held() == []

    def test_claim_counts_and_payload(self, make_board, fresh_metrics):
        a = make_board("w0")
        assert a.try_claim(KEY, family="svm_train")
        holders = a.holders()
        assert holders[KEY]["worker"] == "w0"
        assert holders[KEY]["family"] == "svm_train"
        assert holders[KEY]["pid"] == os.getpid()
        assert _counter(fresh_metrics, "dist.claims") == 1


class TestExpiryAndSteal:
    def test_fresh_lease_is_not_stolen(self, make_board):
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY)
        assert b.try_claim(KEY) is False  # fresh: hands off

    def test_expired_lease_is_stolen(self, make_board, fresh_metrics):
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY, family="phi")
        _backdate(a, KEY)
        assert b.try_claim(KEY, family="phi") is True
        assert b.deaths(KEY) == 1
        assert b.holders()[KEY]["worker"] == "w1"
        assert _counter(fresh_metrics, "dist.lease_expirations") == 1
        assert _counter(fresh_metrics, "dist.steals") == 1

    def test_stalled_owner_release_is_lease_lost(
        self, make_board, fresh_metrics
    ):
        # The classic double-compute: w0's lease is stolen while it
        # still thinks it is computing.  Its release must not touch the
        # thief's lease.
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY)
        _backdate(a, KEY)
        assert b.try_claim(KEY) is True
        a.release(KEY, completed=True)
        assert b.holders()[KEY]["worker"] == "w1"  # thief untouched
        assert _counter(fresh_metrics, "dist.lease_lost") == 1

    def test_renew_all_defends_the_lease(self, make_board):
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY)
        _backdate(a, KEY)
        assert a.renew_all() == 1
        assert b.try_claim(KEY) is False  # renewed: fresh again

    def test_renewal_racing_expiry_aborts_the_break(
        self, make_board, fresh_metrics, monkeypatch
    ):
        # w1 observes the lease expired, but w0's heartbeat fires in
        # the stat->rename window.  The breaker must notice it grabbed
        # a *fresh* lease, hand it back, and abort — never steal it.
        a = make_board("w0")
        b = make_board("w1")
        assert a.try_claim(KEY)
        _backdate(a, KEY)
        monkeypatch.setattr(
            leases_mod, "_pre_break_hook", lambda key: a.renew_all()
        )
        assert b.try_claim(KEY) is False
        monkeypatch.setattr(leases_mod, "_pre_break_hook", None)
        assert a.holders()[KEY]["worker"] == "w0"  # restored intact
        assert b.deaths(KEY) == 0
        assert _counter(fresh_metrics, "dist.break_aborts") == 1
        assert _counter(fresh_metrics, "dist.lease_expirations") == 0

    def test_heartbeat_thread_keeps_lease_alive(self, make_board):
        a = make_board("w0", ttl=0.4, heartbeat=True)
        b = make_board("w1", ttl=0.4)
        assert a.try_claim(KEY)
        time.sleep(1.0)  # > 2 TTLs; heartbeats renew every ttl/4
        assert b.try_claim(KEY) is False
        a.close()  # releases the lease and stops the heartbeat
        assert b.try_claim(KEY) is True


class TestPoison:
    def test_consecutive_deaths_poison_the_stage(
        self, make_board, fresh_metrics
    ):
        w1 = make_board("w1", poison_threshold=2)
        w2 = make_board("w2", poison_threshold=2)
        w3 = make_board("w3", poison_threshold=2)
        assert w1.try_claim(KEY, family="phi")
        _backdate(w1, KEY)
        assert w2.try_claim(KEY, family="phi") is True  # death 1
        _backdate(w2, KEY)
        with pytest.raises(PoisonedStageError) as exc:
            w3.try_claim(KEY, family="phi")  # death 2 == threshold
        assert exc.value.deaths == 2
        assert w3.poisoned(KEY)
        # Poison is durable: later claimants refuse without breaking.
        with pytest.raises(PoisonedStageError):
            w1.try_claim(KEY)
        assert _counter(fresh_metrics, "dist.poisoned") == 1

    def test_completion_clears_the_death_ledger(self, make_board):
        w1 = make_board("w1", poison_threshold=2)
        w2 = make_board("w2", poison_threshold=2)
        assert w1.try_claim(KEY)
        _backdate(w1, KEY)
        assert w2.try_claim(KEY) is True
        assert w2.deaths(KEY) == 1
        w2.release(KEY, completed=True)  # the stage proved harmless
        assert w2.deaths(KEY) == 0
        assert w1.try_claim(KEY) is True

    def test_clean_failure_is_not_a_death(self, make_board):
        w1 = make_board("w1", poison_threshold=1)
        assert w1.try_claim(KEY)
        w1.release(KEY, completed=False)  # compute raised; worker lives
        assert w1.deaths(KEY) == 0
        assert w1.try_claim(KEY) is True


class TestEvents:
    def test_protocol_events_are_emitted(self, make_board):
        events = []
        a = make_board("w0", on_event=events.append)
        b = make_board("w1", on_event=events.append)
        assert a.try_claim(KEY, family="phi")
        _backdate(a, KEY)
        assert b.try_claim(KEY, family="phi")
        b.release(KEY, completed=True)
        kinds = [e["event"] for e in events]
        assert kinds == ["claim", "lease_expired", "claim", "publish"]
        expired = events[1]
        assert expired["victim"] == "w0"
        assert expired["family"] == "phi"
        assert expired["deaths"] == 1

    def test_event_callback_errors_are_suppressed(self, make_board):
        def boom(record):
            raise RuntimeError("provenance must not kill work")

        a = make_board("w0", on_event=boom)
        assert a.try_claim(KEY) is True
        a.release(KEY, completed=True)
        assert a.held() == []


class TestValidation:
    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            leases_mod.LeaseBoard(tmp_path, worker_id="w", ttl=0.0)
        with pytest.raises(ValueError):
            leases_mod.LeaseBoard(
                tmp_path, worker_id="w", poison_threshold=0
            )
