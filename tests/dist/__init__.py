"""Distributed campaign execution tests (:mod:`repro.dist`)."""
