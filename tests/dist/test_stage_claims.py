"""run_stage + LeaseBoard: claim-compute-publish vs poll-for-winner.

These tests run two pretend workers *in one process* (threads + two
store handles on one directory), which keeps every interleaving
scriptable while still exercising the real filesystem protocol.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

import pytest

from repro.dist.leases import LeaseBoard
from repro.exec.graph import run_stage
from repro.exec.store import ArtifactStore
from repro.faults import PoisonedStageError

KEY = hashlib.sha256(b"stage-under-test").hexdigest()


def _board(tmp_path, worker, **overrides) -> LeaseBoard:
    params = dict(
        worker_id=worker, ttl=5.0, poll_interval=0.01, heartbeat=False
    )
    params.update(overrides)
    return LeaseBoard(tmp_path / "leases", **params)


def test_winner_computes_loser_polls(tmp_path, fresh_metrics):
    store_a = ArtifactStore(tmp_path / "store")
    store_b = ArtifactStore(tmp_path / "store")
    board_a = _board(tmp_path, "w0")
    board_b = _board(tmp_path, "w1")
    claimed = threading.Event()
    result = {}

    def winner_compute():
        claimed.set()  # the loser only starts once our lease exists
        time.sleep(0.2)
        return {"value": 42}

    def winner():
        result["winner"] = run_stage(
            winner_compute,
            family="fuse",
            store=store_a,
            key=KEY,
            kind="json",
            claims=board_a,
        )

    thread = threading.Thread(target=winner)
    thread.start()
    try:
        assert claimed.wait(5.0)

        def loser_compute():
            raise AssertionError("the loser must never compute")

        value = run_stage(
            loser_compute,
            family="fuse",
            store=store_b,
            key=KEY,
            kind="json",
            claims=board_b,
        )
    finally:
        thread.join()
        board_a.close()
        board_b.close()
    assert result["winner"] == {"value": 42}
    assert value == {"value": 42}
    snap = fresh_metrics.snapshot()
    assert snap["exec.stage.fuse.executed"]["value"] == 1
    assert snap["exec.stage.fuse.cached"]["value"] == 1
    assert snap["dist.waits"]["value"] >= 1
    # Provenance: the winner's identity is in the put metadata.
    assert store_a.entry(KEY)["meta"]["worker"] == "w0"
    # Both leases are gone: winner released on publish.
    assert board_a.held() == board_b.held() == []


def test_half_published_payload_is_recomputed_cleanly(
    tmp_path, fresh_metrics
):
    """Re-claim after a worker died mid-put: satellite case from PR 3.

    The dead worker left (a) an expired lease and (b) a half-written
    ``.tmp-`` payload.  A payload only becomes visible via
    ``os.replace`` of a *completed* temp, so the re-claimer must see a
    store miss (never a torn read), sweep the orphan on open, steal the
    lease and compute the stage itself.
    """
    seed = ArtifactStore(tmp_path / "store")
    dead = _board(tmp_path, "dead-1")
    assert dead.try_claim(KEY, family="fuse")
    # Fake the mid-put corpse: a torn temp under the payload directory.
    shard = seed.directory / "objects" / KEY[:2]
    shard.mkdir(parents=True, exist_ok=True)
    (shard / ".tmp-torn.json").write_text('{"value": 4')
    # The worker is dead: its lease ages out.
    stale = time.time() - 120.0
    os.utime(dead._lease_path(KEY), (stale, stale))

    # A new worker opens the store (orphan sweep) and runs the stage.
    store = ArtifactStore(tmp_path / "store")
    assert not list(shard.glob(".tmp-*"))  # swept, not published
    board = _board(tmp_path, "w9")
    try:
        value = run_stage(
            lambda: {"value": 42},
            family="fuse",
            store=store,
            key=KEY,
            kind="json",
            claims=board,
        )
    finally:
        board.close()
        dead.close()
    assert value == {"value": 42}
    assert store.get(KEY) == {"value": 42}
    snap = fresh_metrics.snapshot()
    assert snap["dist.lease_expirations"]["value"] == 1
    assert snap["exec.stage.fuse.executed"]["value"] == 1


def test_compute_failure_releases_the_lease(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    board = _board(tmp_path, "w0")
    other = _board(tmp_path, "w1")
    try:
        with pytest.raises(ValueError, match="deterministic bug"):
            run_stage(
                lambda: (_ for _ in ()).throw(
                    ValueError("deterministic bug")
                ),
                family="fuse",
                store=store,
                key=KEY,
                kind="json",
                claims=board,
            )
        assert board.held() == []
        # A clean failure is not a death: no poison progress, and the
        # next claimant takes the stage immediately.
        assert other.deaths(KEY) == 0
        assert other.try_claim(KEY) is True
    finally:
        board.close()
        other.close()


def test_poisoned_stage_raises_from_claim(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    board = _board(tmp_path, "w0", poison_threshold=1)
    graveyard = _board(tmp_path, "old", poison_threshold=1)
    assert graveyard.try_claim(KEY, family="fuse")
    stale = time.time() - 120.0
    os.utime(graveyard._lease_path(KEY), (stale, stale))
    try:
        with pytest.raises(PoisonedStageError):
            run_stage(
                lambda: {"value": 1},
                family="fuse",
                store=store,
                key=KEY,
                kind="json",
                claims=board,
            )
    finally:
        board.close()
        graveyard.close()


def test_warm_store_skips_the_claim_protocol(tmp_path, fresh_metrics):
    store = ArtifactStore(tmp_path / "store")
    store.put(KEY, "json", {"value": 7})
    board = _board(tmp_path, "w0")
    try:
        value = run_stage(
            lambda: pytest.fail("cached stage must not compute"),
            family="fuse",
            store=store,
            key=KEY,
            kind="json",
            claims=board,
        )
    finally:
        board.close()
    assert value == {"value": 7}
    assert fresh_metrics.snapshot()["dist.claims"]["value"] == 0


def test_refresh_lets_a_handle_see_foreign_puts(tmp_path):
    a = ArtifactStore(tmp_path / "store")
    b = ArtifactStore(tmp_path / "store")
    a.put(KEY, "json", {"who": "a"})
    assert not b.has(KEY)  # a long-lived handle only knows its own puts
    assert b.refresh() == 1
    assert b.get(KEY) == {"who": "a"}
    assert b.refresh() == 0  # idempotent
