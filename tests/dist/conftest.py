"""dist test fixtures: metric isolation and lease-board factories."""

from __future__ import annotations

import pytest

from repro.dist.leases import LeaseBoard
from repro.obs.metrics import default_registry


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Zero the process-wide registry so per-test deltas are absolute.

    The registry resets *in place*, so the lease module's counter
    handles (``dist.claims`` …) stay valid across tests.
    """
    default_registry().reset()
    yield default_registry()
    default_registry().reset()


@pytest.fixture()
def make_board(tmp_path):
    """Factory for lease boards sharing one lease directory.

    Heartbeats are off by default so tests script renewal and expiry
    by hand (``renew_all`` / backdated mtimes) without real-time races.
    """
    boards = []

    def factory(worker: str, **overrides) -> LeaseBoard:
        params = dict(
            worker_id=worker,
            ttl=5.0,
            poison_threshold=3,
            poll_interval=0.01,
            heartbeat=False,
        )
        params.update(overrides)
        board = LeaseBoard(tmp_path / "leases", **params)
        boards.append(board)
        return board

    yield factory
    for board in boards:
        board.close()
