"""The tutorial's code snippets must actually run.

Extracts every ```python block from docs/tutorial.md and executes them
sequentially in one namespace (they are written as a single narrative).
The final campaign block would take minutes, so it is compile-checked
only.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "tutorial.md"


def _blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.mark.slow
def test_tutorial_snippets_execute(capsys):
    blocks = _blocks()
    assert len(blocks) >= 6, "tutorial lost its code blocks"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        if "run_campaign" in block:
            # The campaign block runs for minutes; syntax-check only.
            compile(block, f"tutorial-block-{i}", "exec")
            continue
        exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
    # The narrative state must have materialised.
    assert "bundle" in namespace
    assert "system" in namespace
    assert "boosted" in namespace
    assert len(namespace["boosted"].pseudo) >= 0


def test_tutorial_mentions_all_docs():
    text = TUTORIAL.read_text()
    for ref in ("paper_mapping.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert ref in text
