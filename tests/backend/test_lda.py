"""Tests for Fisher LDA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.lda import LDA


def blobs(rng, k=3, dim=6, n_per=80, sep=5.0):
    centers = rng.normal(0, sep, size=(k, dim))
    x = np.vstack([rng.normal(c, 1.0, size=(n_per, dim)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)
    return x, labels


class TestLDA:
    def test_output_dim_default(self, rng):
        x, labels = blobs(rng, k=3)
        z = LDA().fit_transform(x, labels)
        assert z.shape == (x.shape[0], 2)  # K - 1

    def test_explicit_components(self, rng):
        x, labels = blobs(rng, k=4)
        z = LDA(n_components=2).fit_transform(x, labels)
        assert z.shape[1] == 2

    def test_projection_separates_classes(self, rng):
        x, labels = blobs(rng, k=3, sep=8.0)
        z = LDA().fit_transform(x, labels)
        # Between-class distance dwarfs within-class spread on z.
        means = np.array([z[labels == c].mean(axis=0) for c in range(3)])
        within = np.mean([z[labels == c].std(axis=0).mean() for c in range(3)])
        between = np.linalg.norm(means[0] - means[1])
        assert between > 3 * within

    def test_discriminative_direction_found(self, rng):
        # Only dim 0 separates classes; the projection must weight it.
        n = 200
        x = rng.normal(size=(n, 5))
        labels = (x[:, 0] > 0).astype(int)
        x[:, 0] += labels * 6.0
        lda = LDA(n_components=1).fit(x, labels)
        w = np.abs(lda.projection_[:, 0])
        assert w[0] > 2 * w[1:].max()

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            LDA().transform(rng.normal(size=(3, 4)))

    def test_single_class_rejected(self, rng):
        x = rng.normal(size=(10, 3))
        with pytest.raises(ValueError):
            LDA().fit(x, np.zeros(10, dtype=int))

    def test_dim_mismatch_on_transform(self, rng):
        x, labels = blobs(rng)
        lda = LDA().fit(x, labels)
        with pytest.raises(ValueError):
            lda.transform(rng.normal(size=(4, 2)))

    def test_shrinkage_validated(self):
        with pytest.raises(ValueError):
            LDA(shrinkage=0.0)

    def test_handles_more_dims_than_samples(self, rng):
        # Regularisation must keep the eigenproblem solvable.
        x = rng.normal(size=(20, 50))
        labels = np.arange(20) % 2
        z = LDA(shrinkage=0.5).fit_transform(x, labels)
        assert np.all(np.isfinite(z))
