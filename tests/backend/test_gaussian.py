"""Tests for the Gaussian score backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.gaussian import GaussianBackend


def blobs(rng, k=3, dim=4, n_per=60, sep=4.0):
    centers = rng.normal(0, sep, size=(k, dim))
    x = np.vstack([rng.normal(c, 1.0, size=(n_per, dim)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)
    return x, labels, centers


class TestFit:
    def test_means_recovered(self, rng):
        x, labels, centers = blobs(rng)
        gb = GaussianBackend().fit(x, labels)
        np.testing.assert_allclose(gb.means_, centers, atol=0.5)

    def test_shared_variance_near_one(self, rng):
        x, labels, _ = blobs(rng)
        gb = GaussianBackend().fit(x, labels)
        np.testing.assert_allclose(gb.variance_, 1.0, atol=0.3)

    def test_empty_class_falls_back_to_grand_mean(self, rng):
        x, labels, _ = blobs(rng, k=2)
        gb = GaussianBackend().fit(x, labels, n_classes=3)
        np.testing.assert_allclose(gb.means_[2], x.mean(axis=0))

    def test_priors(self, rng):
        x, labels, _ = blobs(rng, k=2)
        uniform = GaussianBackend().fit(x, labels)
        np.testing.assert_allclose(
            np.exp(uniform.log_priors_), [0.5, 0.5]
        )
        counted = GaussianBackend().fit(x, labels, uniform_priors=False)
        assert np.exp(counted.log_priors_).sum() == pytest.approx(1.0)

    def test_label_alignment_checked(self, rng):
        x, labels, _ = blobs(rng)
        with pytest.raises(ValueError):
            GaussianBackend().fit(x, labels[:-1])


class TestScoring:
    def test_posteriors_normalised(self, rng):
        x, labels, _ = blobs(rng)
        gb = GaussianBackend().fit(x, labels)
        post = np.exp(gb.class_log_posteriors(x[:20]))
        np.testing.assert_allclose(post.sum(axis=1), 1.0, atol=1e-9)

    def test_classification_accuracy(self, rng):
        x, labels, _ = blobs(rng, sep=6.0)
        gb = GaussianBackend().fit(x, labels)
        pred = np.argmax(gb.class_log_posteriors(x), axis=1)
        assert np.mean(pred == labels) > 0.95

    def test_detection_scores_sign(self, rng):
        x, labels, _ = blobs(rng, sep=8.0)
        gb = GaussianBackend().fit(x, labels)
        det = gb.detection_scores(x)
        target = det[np.arange(len(labels)), labels]
        assert np.mean(target > 0) > 0.9  # targets accepted at threshold 0

    def test_detection_scores_shape(self, rng):
        x, labels, _ = blobs(rng, k=4)
        gb = GaussianBackend().fit(x, labels)
        assert gb.detection_scores(x[:7]).shape == (7, 4)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            GaussianBackend().log_likelihoods(rng.normal(size=(2, 3)))

    def test_likelihood_matches_manual(self, rng):
        gb = GaussianBackend()
        gb.means_ = np.array([[0.0, 0.0]])
        gb.variance_ = np.array([1.0, 4.0])
        gb.log_priors_ = np.array([0.0])
        x = np.array([[1.0, 2.0]])
        expected = -0.5 * (
            1.0 / 1.0 + 4.0 / 4.0 + np.log(4.0) + 2 * np.log(2 * np.pi)
        )
        assert gb.log_likelihoods(x)[0, 0] == pytest.approx(expected)
