"""Tests for MMI refinement (Eq. 14) with I-smoothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.gaussian import GaussianBackend
from repro.backend.mmi import MMITrainer


def overlapping_blobs(rng, k=3, dim=3, n_per=80, sep=2.0):
    centers = rng.normal(0, sep, size=(k, dim))
    x = np.vstack([rng.normal(c, 1.0, size=(n_per, dim)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)
    return x, labels


class TestMMITrainer:
    def test_objective_monotone_nondecreasing(self, rng):
        x, labels = overlapping_blobs(rng)
        gb = GaussianBackend().fit(x, labels)
        trainer = MMITrainer(n_iter=30)
        trainer.refine(gb, x, labels)
        path = trainer.objective_path_
        assert len(path) >= 2
        assert all(b >= a - 1e-12 for a, b in zip(path, path[1:]))

    def test_improves_on_ml_for_overlapping_classes(self, rng):
        x, labels = overlapping_blobs(rng, sep=1.5)
        gb = GaussianBackend().fit(x, labels)
        ml_obj = MMITrainer.objective(gb, x, labels)
        MMITrainer(n_iter=40).refine(gb, x, labels)
        assert MMITrainer.objective(gb, x, labels) > ml_obj

    def test_i_smoothing_bounds_mean_movement(self, rng):
        x, labels = overlapping_blobs(rng, sep=1.0)
        loose = GaussianBackend().fit(x, labels)
        tight = GaussianBackend().fit(x, labels)
        ml_means = loose.means_.copy()
        MMITrainer(n_iter=30, i_smoothing=1.0).refine(loose, x, labels)
        MMITrainer(n_iter=30, i_smoothing=500.0).refine(tight, x, labels)
        move_loose = np.linalg.norm(loose.means_ - ml_means)
        move_tight = np.linalg.norm(tight.means_ - ml_means)
        assert move_tight < move_loose

    def test_requires_fitted_backend(self, rng):
        x, labels = overlapping_blobs(rng)
        with pytest.raises(RuntimeError):
            MMITrainer().refine(GaussianBackend(), x, labels)

    def test_variance_update_keeps_floor(self, rng):
        x, labels = overlapping_blobs(rng)
        gb = GaussianBackend(var_floor=1e-3).fit(x, labels)
        MMITrainer(n_iter=10, update_variance=True).refine(gb, x, labels)
        assert np.all(gb.variance_ >= 1e-3)

    def test_label_smoothing_validated(self):
        with pytest.raises(ValueError):
            MMITrainer(label_smoothing=1.0)
        with pytest.raises(ValueError):
            MMITrainer(i_smoothing=-1.0)

    def test_objective_with_smoothing_lower(self, rng):
        x, labels = overlapping_blobs(rng)
        gb = GaussianBackend().fit(x, labels)
        plain = MMITrainer.objective(gb, x, labels)
        smoothed = MMITrainer.objective(gb, x, labels, label_smoothing=0.3)
        assert smoothed <= plain  # smoothing mixes in worse classes
