"""Tests for the LDA-MMI fusion backend (Eqs. 14-15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.fusion import LdaMmiFusion, stack_scores, subsystem_weights
from repro.metrics.eer import eer_from_matrix


def synthetic_scores(rng, n=200, k=4, quality=2.0):
    """A subsystem's (scores, labels): target-class scores shifted up."""
    labels = rng.integers(0, k, size=n)
    scores = rng.normal(-1.0, 1.0, size=(n, k))
    scores[np.arange(n), labels] += quality
    return scores, labels


class TestSubsystemWeights:
    def test_normalised(self):
        w = subsystem_weights([10, 30, 60])
        np.testing.assert_allclose(w, [0.1, 0.3, 0.6])

    def test_all_zero_uniform(self):
        np.testing.assert_allclose(subsystem_weights([0, 0]), [0.5, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            subsystem_weights([-1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            subsystem_weights([])


class TestStackScores:
    def test_shapes_and_weighting(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(5, 3))
        stacked = stack_scores([a, b], np.array([2.0, 0.5]))
        assert stacked.shape == (5, 6)
        np.testing.assert_allclose(stacked[:, :3], 2.0 * a)
        np.testing.assert_allclose(stacked[:, 3:], 0.5 * b)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            stack_scores([rng.normal(size=(5, 3)), rng.normal(size=(4, 3))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_scores([])


class TestLdaMmiFusion:
    def test_single_system_calibration_preserves_accuracy(self, rng):
        dev, ydev = synthetic_scores(rng)
        test, ytest = synthetic_scores(rng)
        fusion = LdaMmiFusion(use_lda=False)
        calibrated = fusion.fit_transform([dev], ydev, [test])
        raw_eer = eer_from_matrix(test, ytest)
        cal_eer = eer_from_matrix(calibrated, ytest)
        assert cal_eer <= raw_eer + 0.05

    def test_fusion_beats_single_systems(self, rng):
        ydev = rng.integers(0, 4, size=300)
        ytest = rng.integers(0, 4, size=300)

        def noisy_view(labels, quality):
            scores = rng.normal(-1.0, 1.0, size=(labels.size, 4))
            scores[np.arange(labels.size), labels] += quality
            return scores

        dev = [noisy_view(ydev, 1.5) for _ in range(3)]
        test = [noisy_view(ytest, 1.5) for _ in range(3)]
        fused = LdaMmiFusion(use_lda=False).fit_transform(dev, ydev, test)
        fused_eer = eer_from_matrix(fused, ytest)
        single_eers = [eer_from_matrix(t, ytest) for t in test]
        assert fused_eer < min(single_eers)

    def test_lda_variant_runs(self, rng):
        dev, ydev = synthetic_scores(rng)
        test, _ = synthetic_scores(rng)
        fusion = LdaMmiFusion(use_lda=True, mmi_iterations=5)
        out = fusion.fit_transform([dev], ydev, [test])
        assert out.shape == test.shape
        assert np.all(np.isfinite(out))

    def test_mmi_disabled(self, rng):
        dev, ydev = synthetic_scores(rng)
        test, _ = synthetic_scores(rng)
        out = LdaMmiFusion(use_lda=False, mmi_iterations=0).fit_transform(
            [dev], ydev, [test]
        )
        assert np.all(np.isfinite(out))

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            LdaMmiFusion().transform([rng.normal(size=(3, 4))])

    def test_weights_used(self, rng):
        dev, ydev = synthetic_scores(rng)
        junk = rng.normal(size=dev.shape)
        test, ytest = synthetic_scores(rng)
        test_junk = rng.normal(size=test.shape)
        # Zero-ish weight on the junk subsystem should not hurt much.
        fusion = LdaMmiFusion(use_lda=False)
        out = fusion.fit_transform(
            [dev, junk], ydev, [test, test_junk],
            weights=np.array([0.99, 0.01]),
        )
        assert eer_from_matrix(out, ytest) < 0.2
