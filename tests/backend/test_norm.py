"""Tests for score normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.norm import ZNorm
from repro.metrics.eer import eer_from_matrix


class TestZNorm:
    def test_cohort_normalised(self, rng):
        cohort = rng.normal(3.0, 2.0, size=(200, 4))
        out = ZNorm().fit_transform(cohort)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_per_detector_vs_global(self, rng):
        cohort = rng.normal(size=(100, 3))
        cohort[:, 2] *= 10.0
        per = ZNorm(per_detector=True).fit(cohort)
        glob = ZNorm(per_detector=False).fit(cohort)
        assert per.std_[2] > 5 * per.std_[0]
        assert np.allclose(glob.std_, glob.std_[0])

    def test_transform_preserves_ranking(self, rng):
        # Per-detector affine maps preserve within-column order, hence EER.
        scores = rng.normal(size=(150, 4))
        labels = rng.integers(0, 4, 150)
        scores[np.arange(150), labels] += 2.0
        norm = ZNorm(per_detector=False).fit(scores)
        assert eer_from_matrix(scores, labels) == pytest.approx(
            eer_from_matrix(norm.transform(scores), labels), abs=1e-9
        )

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            ZNorm().transform(rng.normal(size=(2, 3)))

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            ZNorm().fit(np.ones((1, 3)))

    def test_constant_column_safe(self):
        cohort = np.ones((10, 2))
        out = ZNorm().fit_transform(cohort)
        assert np.all(np.isfinite(out))


class TestSausagePruning:
    def test_prune_and_metrics(self):
        from repro.corpus.phoneset import PhoneSet
        from repro.frontend.lattice import Sausage, SausageSlot

        ps = PhoneSet("p", tuple("abcd"))
        sausage = Sausage(
            [
                SausageSlot(
                    np.array([0, 1, 2, 3]),
                    np.array([0.55, 0.25, 0.15, 0.05]),
                ),
                SausageSlot(np.array([2]), np.array([1.0])),
            ],
            ps,
        )
        assert sausage.expected_density() == pytest.approx(2.5)
        assert sausage.entropy() > 0.0

        pruned = sausage.prune(top_k=2)
        assert pruned.expected_density() == pytest.approx(1.5)
        slot = pruned.slots[0]
        np.testing.assert_array_equal(slot.phones, [0, 1])
        assert slot.probs.sum() == pytest.approx(1.0)

    def test_min_prob_keeps_winner(self):
        from repro.corpus.phoneset import PhoneSet
        from repro.frontend.lattice import Sausage, SausageSlot

        ps = PhoneSet("p", tuple("ab"))
        sausage = Sausage(
            [SausageSlot(np.array([0, 1]), np.array([0.4, 0.6]))], ps
        )
        pruned = sausage.prune(min_prob=0.99)
        np.testing.assert_array_equal(pruned.slots[0].phones, [1])

    def test_invalid_args(self):
        from repro.corpus.phoneset import PhoneSet
        from repro.frontend.lattice import Sausage

        sausage = Sausage([], PhoneSet("p", tuple("ab")))
        with pytest.raises(ValueError):
            sausage.prune(top_k=0)
        with pytest.raises(ValueError):
            sausage.prune(min_prob=1.0)
