"""Tests for the logistic-regression fusion backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.logistic import LogisticFusion
from repro.metrics.eer import eer_from_matrix


def shifted_scores(rng, n=240, k=4, quality=2.0):
    labels = rng.integers(0, k, size=n)
    scores = rng.normal(-1.0, 1.0, size=(n, k))
    scores[np.arange(n), labels] += quality
    return scores, labels


class TestFit:
    def test_objective_monotone(self, rng):
        x, y = shifted_scores(rng)
        lf = LogisticFusion(n_iter=100).fit(x, y)
        path = lf.objective_path_
        assert len(path) > 2
        assert all(b >= a - 1e-12 for a, b in zip(path, path[1:]))

    def test_classification_quality(self, rng):
        x, y = shifted_scores(rng, quality=2.5)
        lf = LogisticFusion().fit(x, y)
        pred = np.argmax(lf.class_log_posteriors(x), axis=1)
        assert np.mean(pred == y) > 0.85

    def test_posteriors_normalised(self, rng):
        x, y = shifted_scores(rng)
        lf = LogisticFusion().fit(x, y)
        post = np.exp(lf.class_log_posteriors(x[:10]))
        np.testing.assert_allclose(post.sum(axis=1), 1.0, atol=1e-9)

    def test_l2_shrinks_weights(self, rng):
        x, y = shifted_scores(rng)
        loose = LogisticFusion(l2=1e-4).fit(x, y)
        tight = LogisticFusion(l2=10.0).fit(x, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_explicit_n_classes(self, rng):
        x, y = shifted_scores(rng, k=3)
        lf = LogisticFusion().fit(x, y, n_classes=5)
        assert lf.weights_.shape[1] == 5

    def test_validation(self, rng):
        x, y = shifted_scores(rng)
        with pytest.raises(ValueError):
            LogisticFusion().fit(x, y[:-1])
        with pytest.raises(ValueError):
            LogisticFusion().fit(x, y, n_classes=2)
        with pytest.raises(ValueError):
            LogisticFusion(l2=0.0)


class TestScoring:
    def test_detection_scores_calibrated(self, rng):
        x, y = shifted_scores(rng, quality=3.0)
        xt, yt = shifted_scores(rng, quality=3.0)
        lf = LogisticFusion().fit(x, y)
        det = lf.detection_scores(xt)
        # Target trials mostly above 0, EER low.
        target = det[np.arange(len(yt)), yt]
        assert np.mean(target > 0) > 0.8
        assert eer_from_matrix(det, yt) < 0.15

    def test_fusion_beats_single_noisy_views(self, rng):
        ydev = rng.integers(0, 4, 300)
        ytest = rng.integers(0, 4, 300)

        def view(labels, quality):
            s = rng.normal(-1, 1, size=(labels.size, 4))
            s[np.arange(labels.size), labels] += quality
            return s

        dev = np.hstack([view(ydev, 1.2) for _ in range(3)])
        test = np.hstack([view(ytest, 1.2) for _ in range(3)])
        lf = LogisticFusion().fit(dev, ydev, n_classes=4)
        fused_eer = eer_from_matrix(lf.detection_scores(test), ytest)
        single_eer = eer_from_matrix(test[:, :4], ytest)
        assert fused_eer < single_eer

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticFusion().class_log_posteriors(rng.normal(size=(2, 3)))
