"""Property tests on the classifier stack's mathematical invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.phoneset import PhoneSet
from repro.frontend.lattice import Sausage
from repro.ngram.supervector import SupervectorExtractor, TFLLRScaler
from repro.svm.linear import LinearSVC
from repro.utils.sparse import SparseMatrix, SparseVector

PS = PhoneSet("p", tuple("abcdefgh"))


@st.composite
def phone_strings(draw, n_min=3, n_max=20):
    n = draw(st.integers(n_min, n_max))
    return np.array(
        draw(st.lists(st.integers(0, 7), min_size=n, max_size=n)),
        dtype=np.int64,
    )


class TestTfllrKernelProperties:
    @given(st.lists(phone_strings(), min_size=3, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_scaled_gram_is_psd(self, strings):
        """The TFLLR kernel matrix must be positive semi-definite."""
        ex = SupervectorExtractor(8, orders=(1, 2))
        matrix = ex.extract_matrix(
            [Sausage.from_hard_sequence(s, PS) for s in strings]
        )
        scaled = TFLLRScaler(min_prob=1e-9).fit_transform(matrix)
        gram = scaled.to_dense() @ scaled.to_dense().T
        eigvals = np.linalg.eigvalsh(gram)
        assert eigvals.min() > -1e-8

    @given(phone_strings())
    @settings(max_examples=30, deadline=None)
    def test_supervector_blocks_are_distributions(self, string):
        ex = SupervectorExtractor(8, orders=(1, 2))
        dense = ex.extract(Sausage.from_hard_sequence(string, PS)).to_dense()
        assert dense[:8].sum() == pytest.approx(1.0)
        if string.size >= 2:
            assert dense[8:].sum() == pytest.approx(1.0)
        assert np.all(dense >= 0)


class TestSvmInvariances:
    def _fit(self, x, y, seed=0):
        return LinearSVC(C=1.0, max_epochs=150, tol=1e-5, seed=seed).fit(x, y)

    def _sparse(self, dense):
        rows = []
        for row in dense:
            idx = np.flatnonzero(row)
            rows.append(
                SparseVector(dense.shape[1], idx.astype(np.int64), row[idx])
            )
        return SparseMatrix.from_rows(rows, dim=dense.shape[1])

    def test_label_flip_symmetry(self, rng):
        """Flipping all labels must negate the decision function."""
        dense = rng.normal(size=(80, 5))
        y = np.where(dense[:, 0] + 0.2 * dense[:, 1] > 0, 1.0, -1.0)
        x = self._sparse(dense)
        a = self._fit(x, y)
        b = self._fit(x, -y)
        np.testing.assert_allclose(
            a.decision_function(x), -b.decision_function(x), atol=1e-2
        )

    def test_duplicated_data_same_solution_with_halved_c(self, rng):
        """2x duplicated data with C/2 has the same optimum as (data, C)."""
        dense = rng.normal(size=(60, 4))
        y = np.where(dense @ np.array([1.0, -1, 0.5, 0]) > 0, 1.0, -1.0)
        x = self._sparse(dense)
        x2 = self._sparse(np.vstack([dense, dense]))
        y2 = np.concatenate([y, y])
        a = LinearSVC(C=1.0, max_epochs=300, tol=1e-6).fit(x, y)
        b = LinearSVC(C=0.5, max_epochs=300, tol=1e-6).fit(x2, y2)
        np.testing.assert_allclose(a.weight_, b.weight_, atol=5e-2)

    def test_feature_scaling_equivariance(self, rng):
        """Scaling one feature by c scales its weight by ~1/c (same margins)."""
        dense = rng.normal(size=(100, 3))
        y = np.where(dense @ np.array([1.0, -1.0, 0.3]) > 0.2, 1.0, -1.0)
        scaled = dense.copy()
        scaled[:, 0] *= 4.0
        a = self._fit(self._sparse(dense), y)
        b = self._fit(self._sparse(scaled), y)
        # Margins (decision values) should be similar since the problem is
        # equivalent up to reparameterisation of one coordinate... the L2
        # penalty breaks exact equivalence, so check predictions agree.
        agree = np.mean(
            a.predict(self._sparse(dense)) == b.predict(self._sparse(scaled))
        )
        assert agree > 0.95
