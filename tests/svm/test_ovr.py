"""Tests for one-vs-rest multiclass SVM (Eqs. 6-7) and the VSM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.lattice import Sausage
from repro.corpus.phoneset import PhoneSet
from repro.svm.ovr import OneVsRestSVM
from repro.svm.vsm import VSM
from repro.utils.sparse import SparseMatrix, SparseVector


def to_sparse(x: np.ndarray) -> SparseMatrix:
    rows = []
    for row in x:
        idx = np.flatnonzero(row)
        rows.append(SparseVector(x.shape[1], idx.astype(np.int64), row[idx]))
    return SparseMatrix.from_rows(rows, dim=x.shape[1])


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(5)
    centers = np.array([[0, 0], [6, 0], [0, 6]], dtype=float)
    x = np.vstack([rng.normal(c, 1.0, size=(60, 2)) for c in centers])
    labels = np.repeat(np.arange(3), 60)
    return to_sparse(x), labels


class TestOneVsRest:
    def test_accuracy(self, three_blobs):
        x, labels = three_blobs
        ovr = OneVsRestSVM(3, C=5.0).fit(x, labels)
        assert np.mean(ovr.predict(x) == labels) > 0.95

    def test_decision_matrix_shape(self, three_blobs):
        x, labels = three_blobs
        ovr = OneVsRestSVM(3).fit(x, labels)
        assert ovr.decision_matrix(x).shape == (x.n_rows, 3)

    def test_own_class_scores_higher(self, three_blobs):
        x, labels = three_blobs
        scores = OneVsRestSVM(3, C=5.0).fit(x, labels).decision_matrix(x)
        mean_target = scores[np.arange(len(labels)), labels].mean()
        mask = np.ones_like(scores, dtype=bool)
        mask[np.arange(len(labels)), labels] = False
        assert mean_target > scores[mask].mean()

    def test_absent_class_constant_negative(self, three_blobs):
        x, labels = three_blobs
        # Train a 4-class model where class 3 never occurs.
        ovr = OneVsRestSVM(4).fit(x, labels)
        scores = ovr.decision_matrix(x)
        np.testing.assert_allclose(scores[:, 3], -1.0)

    def test_label_range_checked(self, three_blobs):
        x, _ = three_blobs
        with pytest.raises(ValueError):
            OneVsRestSVM(2).fit(x, np.full(x.n_rows, 5))

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            OneVsRestSVM(1)

    def test_unfitted_raises(self, three_blobs):
        x, _ = three_blobs
        with pytest.raises(RuntimeError):
            OneVsRestSVM(3).decision_matrix(x)


class TestVSM:
    PS = PhoneSet("v", tuple("abcdef"))

    def _sausages_and_labels(self, n_per=12):
        """Two 'languages' with disjoint characteristic bigrams."""
        rng = np.random.default_rng(0)
        sausages, labels = [], []
        for lang, pair in enumerate([(0, 1), (2, 3)]):
            for _ in range(n_per):
                seq = []
                for _ in range(20):
                    seq.extend(pair if rng.random() < 0.8 else (4, 5))
                sausages.append(
                    Sausage.from_hard_sequence(np.array(seq), self.PS)
                )
                labels.append(lang)
        return sausages, np.array(labels)

    def test_fit_score_separates_languages(self):
        sausages, labels = self._sausages_and_labels()
        vsm = VSM(6, 2, orders=(1, 2), max_epochs=30)
        vsm.fit(sausages, labels)
        assert np.mean(vsm.predict(sausages) == labels) == 1.0

    def test_fit_matrix_equivalent_to_fit(self):
        sausages, labels = self._sausages_and_labels()
        a = VSM(6, 2, orders=(1, 2), seed=1)
        b = VSM(6, 2, orders=(1, 2), seed=1)
        a.fit(sausages, labels)
        raw = b.extract(sausages)
        b.fit_matrix(raw, labels)
        np.testing.assert_allclose(
            a.score(sausages), b.score_matrix(raw), atol=1e-12
        )

    def test_tfllr_disabled_still_works(self):
        sausages, labels = self._sausages_and_labels()
        vsm = VSM(6, 2, orders=(1, 2), tfllr=False)
        vsm.fit(sausages, labels)
        assert np.mean(vsm.predict(sausages) == labels) > 0.9

    def test_score_shape(self):
        sausages, labels = self._sausages_and_labels(n_per=5)
        vsm = VSM(6, 2, orders=(1,)).fit(sausages, labels)
        assert vsm.score(sausages).shape == (10, 2)
