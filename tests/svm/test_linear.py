"""Tests for the dual coordinate descent linear SVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.svm.linear import LinearSVC
from repro.utils.sparse import SparseMatrix, SparseVector


def to_sparse(x: np.ndarray) -> SparseMatrix:
    rows = []
    for row in x:
        idx = np.flatnonzero(row)
        rows.append(SparseVector(x.shape[1], idx.astype(np.int64), row[idx]))
    return SparseMatrix.from_rows(rows, dim=x.shape[1])


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(300, 4))
    w_true = np.array([1.0, -2.0, 0.5, 0.0])
    margin = x @ w_true + 0.3
    # Keep a real margin so a finite-C SVM can separate perfectly.
    x = x[np.abs(margin) > 0.4][:150]
    margin = margin[np.abs(margin) > 0.4][:150]
    y = np.where(margin > 0, 1.0, -1.0)
    return to_sparse(x), y


@pytest.fixture(scope="module")
def noisy():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(200, 6))
    w_true = rng.normal(size=6)
    y = np.where(x @ w_true + rng.normal(0, 0.8, 200) > 0, 1.0, -1.0)
    return to_sparse(x), y


class TestFitting:
    def test_perfect_on_separable(self, separable):
        x, y = separable
        svc = LinearSVC(C=10.0, max_epochs=100).fit(x, y)
        assert np.mean(svc.predict(x) == y) == 1.0

    @pytest.mark.parametrize("loss", ["l1", "l2"])
    def test_both_losses_train(self, noisy, loss):
        x, y = noisy
        svc = LinearSVC(C=1.0, loss=loss).fit(x, y)
        assert np.mean(svc.predict(x) == y) > 0.85

    def test_weak_duality(self, noisy):
        """primal >= -dual always; gap small after convergence."""
        x, y = noisy
        svc = LinearSVC(C=1.0, max_epochs=200, tol=1e-5).fit(x, y)
        primal = svc.primal_objective(x, y)
        dual = -svc.dual_objective(x, y)
        assert primal >= dual - 1e-9
        assert primal - dual < 0.05 * abs(primal)

    def test_alpha_box_constraint_l1(self, noisy):
        x, y = noisy
        svc = LinearSVC(C=0.7, loss="l1").fit(x, y)
        assert np.all(svc.alpha_ >= -1e-12)
        assert np.all(svc.alpha_ <= 0.7 + 1e-12)

    def test_w_is_support_vector_expansion(self, noisy):
        x, y = noisy
        svc = LinearSVC(C=1.0).fit(x, y)
        w_rebuilt = np.zeros(x.dim)
        for i in range(x.n_rows):
            row = x.row(i)
            w_rebuilt[row.indices] += svc.alpha_[i] * y[i] * row.values
        np.testing.assert_allclose(svc.weight_, w_rebuilt, atol=1e-9)

    def test_larger_C_lowers_training_hinge_loss(self, noisy):
        x, y = noisy

        def hinge(svc):
            return np.maximum(
                0.0, 1.0 - y * svc.decision_function(x)
            ).mean()

        loose = LinearSVC(C=0.01, max_epochs=300, tol=1e-4).fit(x, y)
        tight = LinearSVC(C=10.0, max_epochs=300, tol=1e-4).fit(x, y)
        assert hinge(tight) < hinge(loose)

    def test_deterministic(self, noisy):
        x, y = noisy
        a = LinearSVC(C=1.0, seed=3).fit(x, y)
        b = LinearSVC(C=1.0, seed=3).fit(x, y)
        np.testing.assert_allclose(a.weight_, b.weight_)

    def test_handles_empty_rows(self):
        x = to_sparse(np.array([[1.0, 0.0], [0.0, 0.0], [-1.0, 0.0]]))
        y = np.array([1.0, 1.0, -1.0])
        svc = LinearSVC().fit(x, y)
        assert np.isfinite(svc.weight_).all()

    def test_bias_learned(self):
        # All-positive data shifted away from the origin needs a bias.
        x = to_sparse(np.array([[3.0], [4.0], [1.0], [2.0]]))
        y = np.array([1.0, 1.0, -1.0, -1.0])
        svc = LinearSVC(C=10.0, max_epochs=200).fit(x, y)
        assert np.mean(svc.predict(x) == y) == 1.0
        assert svc.bias_ != 0.0


class TestValidation:
    def test_bad_labels(self, separable):
        x, _ = separable
        with pytest.raises(ValueError, match="-1 or \\+1"):
            LinearSVC().fit(x, np.zeros(x.n_rows))

    def test_label_length(self, separable):
        x, _ = separable
        with pytest.raises(ValueError):
            LinearSVC().fit(x, np.ones(3))

    def test_empty_training(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(SparseMatrix.from_rows([], dim=2), np.empty(0))

    def test_unfitted_scoring(self, separable):
        x, _ = separable
        with pytest.raises(RuntimeError):
            LinearSVC().decision_function(x)

    def test_dim_mismatch(self, separable):
        x, y = separable
        svc = LinearSVC().fit(x, y)
        with pytest.raises(ValueError):
            svc.decision_function(to_sparse(np.zeros((2, 9))))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0)
        with pytest.raises(ValueError):
            LinearSVC(loss="hinge2")
