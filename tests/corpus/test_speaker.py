"""Tests for session variability models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.speaker import Channel, Session, SessionSampler, Speaker


def _session(dim=8, snr=20.0, spk_scale=0.3, tilt_scale=0.1) -> Session:
    rng = np.random.default_rng(0)
    return Session(
        speaker=Speaker(0, rng.normal(0, spk_scale, dim), 1.0),
        channel=Channel(0, rng.normal(0, tilt_scale, dim), 1.0),
        snr_db=snr,
    )


class TestSession:
    def test_noise_std_from_snr(self):
        s = _session(snr=20.0)
        assert s.noise_std() == pytest.approx(0.1)
        assert _session(snr=0.0).noise_std() == pytest.approx(1.0)

    def test_distortion_in_range_and_monotone_in_noise(self):
        clean = _session(snr=30.0)
        noisy = _session(snr=3.0)
        assert 0.0 <= clean.distortion() < 1.0
        assert noisy.distortion() > clean.distortion()

    def test_transform_applies_offset_and_gain(self):
        dim = 4
        s = Session(
            speaker=Speaker(0, np.ones(dim), 1.0),
            channel=Channel(0, np.zeros(dim), 2.0),
            snr_db=200.0,  # effectively noiseless
        )
        frames = np.zeros((3, dim))
        out = s.transform_frames(frames, 0)
        np.testing.assert_allclose(out, 2.0, atol=1e-6)

    def test_speaker_rate_validated(self):
        with pytest.raises(ValueError):
            Speaker(0, np.zeros(3), rate=5.0)

    def test_channel_gain_validated(self):
        with pytest.raises(ValueError):
            Channel(0, np.zeros(3), gain=0.0)


class TestSessionSampler:
    def test_deterministic_pools(self):
        a = SessionSampler(8, seed=5)
        b = SessionSampler(8, seed=5)
        sa, sb = a.sample(1), b.sample(1)
        np.testing.assert_allclose(sa.speaker.offset, sb.speaker.offset)
        assert sa.snr_db == sb.snr_db

    def test_finite_speaker_pool_repeats(self):
        sampler = SessionSampler(4, n_speakers=3, seed=0)
        ids = {sampler.sample(i).speaker.speaker_id for i in range(40)}
        assert ids <= {0, 1, 2}
        assert len(ids) == 3

    def test_wider_condition_is_more_distorted(self):
        train = SessionSampler(8, speaker_scale=0.2, snr_mean_db=20, seed=0)
        test = SessionSampler(8, speaker_scale=0.5, snr_mean_db=8, seed=0)
        d_train = np.mean([train.sample(i).distortion() for i in range(50)])
        d_test = np.mean([test.sample(i).distortion() for i in range(50)])
        assert d_test > d_train

    def test_snr_floor(self):
        sampler = SessionSampler(4, snr_mean_db=0.0, snr_spread_db=10, seed=0)
        assert all(sampler.sample(i).snr_db >= 0.0 for i in range(20))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SessionSampler(0)
        with pytest.raises(ValueError):
            SessionSampler(4, n_speakers=0)
