"""Tests for synthetic language models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.language import (
    LanguageRegistry,
    LanguageSpec,
    make_language,
    make_language_family,
)
from repro.corpus.phoneset import universal_phone_set


@pytest.fixture(scope="module")
def universal():
    return universal_phone_set()


class TestMakeLanguage:
    def test_valid_distributions(self, universal):
        lang = make_language("l0", universal, 0, inventory_size=20)
        assert lang.n_phones == 20
        np.testing.assert_allclose(lang.initial.sum(), 1.0)
        np.testing.assert_allclose(lang.transition.sum(axis=1), 1.0)

    def test_deterministic_by_seed(self, universal):
        a = make_language("l", universal, 5, inventory_size=15)
        b = make_language("l", universal, 5, inventory_size=15)
        np.testing.assert_array_equal(a.inventory, b.inventory)
        np.testing.assert_allclose(a.transition, b.transition)

    def test_prototype_interpolation(self, universal):
        rng = np.random.default_rng(0)
        proto = rng.gamma(1.0, size=(len(universal), len(universal)))
        proto /= proto.sum(axis=1, keepdims=True)
        blended = make_language(
            "l", universal, 1, inventory_size=20,
            prototype=proto, prototype_weight=0.9,
        )
        own = make_language("l", universal, 1, inventory_size=20)
        proto_sub = proto[np.ix_(blended.inventory, blended.inventory)]
        proto_sub /= proto_sub.sum(axis=1, keepdims=True)
        # Heavy prototype weight pulls transitions toward the prototype.
        d_blend = np.abs(blended.transition - proto_sub).mean()
        d_own = np.abs(own.transition - proto_sub).mean()
        assert d_blend < d_own

    def test_prototype_shape_checked(self, universal):
        with pytest.raises(ValueError, match="universal"):
            make_language(
                "l", universal, 0, prototype=np.ones((3, 3)) / 3,
                prototype_weight=0.5,
            )


class TestLanguageSpec:
    def test_validation(self, universal):
        with pytest.raises(ValueError):
            LanguageSpec(
                "bad",
                inventory=np.array([0, 1]),
                initial=np.array([0.5, 0.6]),  # not a distribution
                transition=np.eye(2),
            )

    def test_sample_phones_in_inventory(self, universal):
        lang = make_language("l", universal, 3, inventory_size=12)
        phones = lang.sample_phones(500, 0)
        assert set(phones.tolist()) <= set(lang.inventory.tolist())

    def test_sample_phones_empty(self, universal):
        lang = make_language("l", universal, 3, inventory_size=12)
        assert lang.sample_phones(0, 0).size == 0

    def test_sample_follows_transitions(self, universal):
        # A 2-phone deterministic cycle must alternate.
        lang = LanguageSpec(
            "cycle",
            inventory=np.array([0, 1]),
            initial=np.array([1.0, 0.0]),
            transition=np.array([[0.0, 1.0], [1.0, 0.0]]),
        )
        phones = lang.sample_phones(10, 0)
        np.testing.assert_array_equal(phones % 2, np.arange(10) % 2)

    def test_stationary_distribution(self, universal):
        lang = make_language("l", universal, 9, inventory_size=10)
        pi = lang.stationary_distribution()
        np.testing.assert_allclose(pi.sum(), 1.0)
        np.testing.assert_allclose(pi @ lang.transition, pi, atol=1e-8)


class TestLanguageFamily:
    def test_count_and_names(self):
        langs = make_language_family(7, 11)
        assert len(langs) == 7
        assert len({lang.name for lang in langs}) == 7

    def test_same_family_more_similar(self):
        langs = make_language_family(
            8, 3, n_families=2, family_weight=0.7, inventory_size=30
        )

        def chain_distance(a, b):
            shared = np.intersect1d(a.inventory, b.inventory)
            ia = np.searchsorted(a.inventory, shared)
            ib = np.searchsorted(b.inventory, shared)
            ta = a.transition[np.ix_(ia, ia)]
            tb = b.transition[np.ix_(ib, ib)]
            return np.abs(ta - tb).mean()

        # Round-robin assignment: 0, 2, 4, 6 share family 0; 1, 3, ... family 1.
        same = chain_distance(langs[0], langs[2])
        cross = chain_distance(langs[0], langs[1])
        assert same < cross

    def test_needs_two_languages(self):
        with pytest.raises(ValueError):
            make_language_family(1, 0)


class TestLanguageRegistry:
    def test_lookup(self):
        langs = make_language_family(4, 2)
        reg = LanguageRegistry(langs)
        assert len(reg) == 4
        assert reg.index_of(langs[2].name) == 2
        assert reg[1] is langs[1]
        assert reg.names == [lang.name for lang in langs]

    def test_unknown_name(self):
        reg = LanguageRegistry(make_language_family(3, 2))
        with pytest.raises(KeyError):
            reg.index_of("nope")

    def test_duplicate_names_rejected(self):
        langs = make_language_family(3, 2)
        with pytest.raises(ValueError):
            LanguageRegistry([langs[0], langs[0], langs[1]])
