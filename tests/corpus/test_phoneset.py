"""Tests for phone inventories."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.phoneset import (
    UNIVERSAL_SIZE,
    PhoneSet,
    sample_inventory,
    universal_phone_set,
)


class TestPhoneSet:
    def test_universal_size(self):
        u = universal_phone_set()
        assert len(u) == UNIVERSAL_SIZE
        assert len(set(u.symbols)) == UNIVERSAL_SIZE

    def test_index_symbol_roundtrip(self):
        u = universal_phone_set()
        for i in (0, 10, len(u) - 1):
            assert u.index(u.symbol(i)) == i

    def test_unknown_symbol_raises(self):
        u = universal_phone_set()
        with pytest.raises(ValueError, match="not in phone set"):
            u.index("totally-not-a-phone")

    def test_contains(self):
        u = universal_phone_set()
        assert u.symbols[0] in u

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PhoneSet("bad", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            PhoneSet("bad", ())

    def test_subset_preserves_order(self):
        u = universal_phone_set()
        sub = u.subset("sub", np.array([5, 2, 9]))
        assert sub.symbols == (u.symbol(5), u.symbol(2), u.symbol(9))

    def test_custom_size_padding(self):
        big = universal_phone_set(100)
        assert len(big) == 100
        small = universal_phone_set(10)
        assert len(small) == 10

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            universal_phone_set(1)


class TestSampleInventory:
    @given(st.integers(2, UNIVERSAL_SIZE), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_size_sorted_unique_in_range(self, size, seed):
        u = universal_phone_set()
        inv = sample_inventory(u, size, seed)
        assert inv.size == size
        assert np.all(np.diff(inv) > 0)
        assert inv.min() >= 0 and inv.max() < len(u)

    def test_core_shared_across_samples(self):
        # Small inventories draw purely from the shared core block.
        u = universal_phone_set()
        n_core = int(0.5 * len(u))
        inv = sample_inventory(u, 10, 0)
        assert inv.max() < n_core

    def test_deterministic(self):
        u = universal_phone_set()
        np.testing.assert_array_equal(
            sample_inventory(u, 20, 7), sample_inventory(u, 20, 7)
        )

    def test_invalid_sizes(self):
        u = universal_phone_set()
        with pytest.raises(ValueError):
            sample_inventory(u, 0, 0)
        with pytest.raises(ValueError):
            sample_inventory(u, len(u) + 1, 0)
