"""Tests for frame-level feature post-processing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.features import FeaturePipeline, add_deltas, cmvn, delta


class TestDelta:
    def test_constant_signal_zero_delta(self):
        x = np.ones((10, 3)) * 4.2
        np.testing.assert_allclose(delta(x), 0.0, atol=1e-12)

    def test_linear_ramp_constant_delta(self):
        # x_t = t: regression delta of a linear signal is its slope (1).
        x = np.arange(20, dtype=float)[:, None]
        d = delta(x, width=2)
        np.testing.assert_allclose(d[3:-3], 1.0, atol=1e-12)

    def test_edges_repeat_frames(self):
        x = np.arange(6, dtype=float)[:, None]
        d = delta(x, width=1)
        # At t=0: (x1 - x0)/2 with repeated edge = 0.5.
        assert d[0, 0] == pytest.approx(0.5)
        assert d[-1, 0] == pytest.approx(0.5)

    def test_empty_input(self):
        out = delta(np.zeros((0, 4)))
        assert out.shape == (0, 4)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            delta(np.zeros((3, 2)), width=0)

    @given(st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_linearity(self, width):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 2))
        b = rng.normal(size=(12, 2))
        np.testing.assert_allclose(
            delta(a + b, width=width),
            delta(a, width=width) + delta(b, width=width),
            atol=1e-12,
        )


class TestAddDeltas:
    def test_dimension_stacking(self):
        x = np.random.default_rng(0).normal(size=(8, 13))
        assert add_deltas(x, order=2).shape == (8, 39)
        assert add_deltas(x, order=1).shape == (8, 26)
        assert add_deltas(x, order=0).shape == (8, 13)

    def test_first_block_is_statics(self):
        x = np.random.default_rng(1).normal(size=(5, 4))
        np.testing.assert_array_equal(add_deltas(x)[:, :4], x)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            add_deltas(np.zeros((3, 2)), order=-1)


class TestCmvn:
    def test_zero_mean_unit_variance(self):
        x = np.random.default_rng(2).normal(3.0, 2.5, size=(200, 5))
        out = cmvn(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_mean_only(self):
        x = np.random.default_rng(2).normal(3.0, 2.5, size=(50, 3))
        out = cmvn(x, variance=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert out.std() > 1.5  # variance untouched

    def test_constant_dim_no_blowup(self):
        x = np.ones((10, 2))
        out = cmvn(x)
        assert np.all(np.isfinite(out))

    def test_empty(self):
        assert cmvn(np.zeros((0, 3))).shape == (0, 3)


class TestFeaturePipeline:
    def test_modes_and_dims(self):
        x = np.random.default_rng(3).normal(size=(20, 13))
        for mode, dim in [
            ("none", 13),
            ("cmvn", 13),
            ("deltas", 39),
            ("cmvn+deltas", 39),
        ]:
            pipe = FeaturePipeline(mode)
            assert pipe.output_dim(13) == dim
            assert pipe(x).shape == (20, dim)

    def test_none_is_identity(self):
        x = np.random.default_rng(3).normal(size=(6, 4))
        np.testing.assert_array_equal(FeaturePipeline("none")(x), x)

    def test_cmvn_deltas_statics_normalised(self):
        x = np.random.default_rng(4).normal(5.0, 3.0, size=(100, 4))
        out = FeaturePipeline("cmvn+deltas")(x)
        np.testing.assert_allclose(out[:, :4].mean(axis=0), 0.0, atol=1e-9)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FeaturePipeline("mfcc")

    def test_repr(self):
        assert "cmvn" in repr(FeaturePipeline("cmvn"))


class TestRecognizerIntegration:
    def test_acoustic_recognizer_with_deltas(self, tiny_bundle):
        from repro.corpus import Corpus, SessionSampler, UtteranceGenerator, make_language
        from repro.frontend import AcousticPhoneRecognizer

        lang = make_language("dl", tiny_bundle.universal, 3, inventory_size=10)
        gen = UtteranceGenerator(
            SessionSampler(tiny_bundle.config.feature_dim, seed=4),
            frame_rate=tiny_bundle.config.frame_rate,
        )
        corpus = Corpus(
            [gen.sample_utterance(f"d{i}", lang, 15.0, i) for i in range(4)]
        )
        rec = AcousticPhoneRecognizer(
            "DELTA",
            tiny_bundle.acoustics,
            lang,
            features="cmvn+deltas",
            seed=1,
        )
        rec.train(corpus)
        sausage = rec.decode(corpus[0], 0)
        assert len(sausage) > 0
