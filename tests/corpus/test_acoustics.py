"""Tests for the synthetic acoustic space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.acoustics import AcousticSpace
from repro.corpus.generator import UtteranceGenerator
from repro.corpus.language import make_language
from repro.corpus.phoneset import universal_phone_set
from repro.corpus.speaker import SessionSampler


@pytest.fixture(scope="module")
def space():
    return AcousticSpace(universal_phone_set(), feature_dim=13, seed=2)


@pytest.fixture(scope="module")
def utterance():
    universal = universal_phone_set()
    lang = make_language("l", universal, 0, inventory_size=20)
    gen = UtteranceGenerator(SessionSampler(13, seed=1), frame_rate=20.0)
    return gen.sample_utterance("u", lang, 10.0, 0)


class TestAcousticSpace:
    def test_phone_means_shape(self, space):
        assert space.phone_means.shape == (space.n_phones(), 13)

    def test_frame_means_repeat_phone_means(self, space, utterance):
        means = space.frame_means(utterance)
        assert means.shape == (utterance.n_frames, 13)
        np.testing.assert_allclose(
            means[0], space.phone_means[utterance.phones[0]]
        )

    def test_frame_labels_align(self, space, utterance):
        labels = space.frame_labels(utterance)
        assert labels.shape == (utterance.n_frames,)
        assert labels[0] == utterance.phones[0]
        assert labels[-1] == utterance.phones[-1]

    def test_emit_shape_and_determinism(self, space, utterance):
        a = space.emit(utterance, 7)
        b = space.emit(utterance, 7)
        assert a.shape == (utterance.n_frames, 13)
        np.testing.assert_array_equal(a, b)

    def test_emit_differs_across_rngs(self, space, utterance):
        assert not np.allclose(space.emit(utterance, 1), space.emit(utterance, 2))

    def test_frames_near_phone_means(self, space, utterance):
        # Averaging frames of each phone should land near the (session-
        # shifted) phone mean: correlation with clean means must be strong.
        frames = space.emit(utterance, 0)
        means = space.frame_means(utterance)
        centered_f = frames - frames.mean(axis=0)
        centered_m = means - means.mean(axis=0)
        corr = np.sum(centered_f * centered_m) / (
            np.linalg.norm(centered_f) * np.linalg.norm(centered_m)
        )
        assert corr > 0.5

    def test_separation_controls_spread(self):
        universal = universal_phone_set()
        tight = AcousticSpace(universal, separation=0.5, seed=0)
        wide = AcousticSpace(universal, separation=4.0, seed=0)
        assert np.linalg.norm(wide.phone_means) > np.linalg.norm(
            tight.phone_means
        )

    def test_invalid_args(self):
        universal = universal_phone_set()
        with pytest.raises(ValueError):
            AcousticSpace(universal, feature_dim=0)
        with pytest.raises(ValueError):
            AcousticSpace(universal, ar_coeff=1.0)
