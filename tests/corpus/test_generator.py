"""Tests for utterance and corpus generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.generator import Corpus, Utterance, UtteranceGenerator
from repro.corpus.language import LanguageRegistry, make_language_family
from repro.corpus.phoneset import universal_phone_set
from repro.corpus.speaker import SessionSampler


@pytest.fixture(scope="module")
def generator():
    return UtteranceGenerator(
        SessionSampler(13, seed=3), frame_rate=20.0, duration_jitter=0.1
    )


@pytest.fixture(scope="module")
def languages():
    return make_language_family(3, 17, universal=universal_phone_set())


class TestSampleUtterance:
    def test_duration_close_to_nominal(self, generator, languages):
        for i in range(5):
            utt = generator.sample_utterance("u", languages[0], 10.0, i)
            assert 10.0 * 0.85 <= utt.duration <= 10.0 * 1.2

    def test_frames_consistent(self, generator, languages):
        utt = generator.sample_utterance("u", languages[0], 5.0, 0)
        assert utt.n_frames == utt.phone_frames.sum()
        assert utt.phone_frames.min() >= 1
        assert utt.n_phones == utt.phones.size

    def test_phones_from_language_inventory(self, generator, languages):
        lang = languages[1]
        utt = generator.sample_utterance("u", lang, 10.0, 1)
        assert set(utt.phones.tolist()) <= set(lang.inventory.tolist())

    def test_deterministic(self, generator, languages):
        a = generator.sample_utterance("u", languages[0], 5.0, 42)
        b = generator.sample_utterance("u", languages[0], 5.0, 42)
        np.testing.assert_array_equal(a.phones, b.phones)
        np.testing.assert_array_equal(a.phone_frames, b.phone_frames)

    def test_shorter_duration_fewer_phones(self, generator, languages):
        short = generator.sample_utterance("s", languages[0], 3.0, 0)
        long = generator.sample_utterance("l", languages[0], 30.0, 0)
        assert short.n_phones < long.n_phones

    def test_invalid_duration(self, generator, languages):
        with pytest.raises(ValueError):
            generator.sample_utterance("u", languages[0], 0.0, 0)


class TestUtteranceValidation:
    def test_frames_must_be_positive(self, generator, languages):
        utt = generator.sample_utterance("u", languages[0], 3.0, 0)
        with pytest.raises(ValueError):
            Utterance(
                utt_id="bad",
                language=utt.language,
                nominal_duration=3.0,
                phones=utt.phones,
                phone_frames=np.zeros_like(utt.phone_frames),
                session=utt.session,
                frame_rate=20.0,
            )

    def test_shape_mismatch_rejected(self, generator, languages):
        utt = generator.sample_utterance("u", languages[0], 3.0, 0)
        with pytest.raises(ValueError):
            Utterance(
                utt_id="bad",
                language=utt.language,
                nominal_duration=3.0,
                phones=utt.phones,
                phone_frames=utt.phone_frames[:-1],
                session=utt.session,
                frame_rate=20.0,
            )


class TestCorpus:
    def test_sample_corpus_balanced(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 4, 5.0, seed=1)
        assert len(corpus) == 12
        by_lang = corpus.by_language()
        assert all(len(v) == 4 for v in by_lang.values())

    def test_label_indices(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 2, 5.0, seed=1)
        labels = corpus.label_indices(registry.names)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 2, 2])

    def test_label_indices_unknown_language(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 1, 5.0, seed=1)
        with pytest.raises(KeyError):
            corpus.label_indices(["other"])

    def test_subset_and_extend(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 2, 5.0, seed=1)
        sub = corpus.subset([0, 3])
        assert len(sub) == 2
        assert sub[0].utt_id == corpus[0].utt_id
        combined = sub.extend(corpus)
        assert len(combined) == 2 + len(corpus)

    def test_unique_ids(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 3, 5.0, seed=1)
        ids = [u.utt_id for u in corpus]
        assert len(set(ids)) == len(ids)

    def test_total_audio_seconds(self, generator, languages):
        registry = LanguageRegistry(list(languages))
        corpus = generator.sample_corpus(registry, 2, 5.0, seed=1)
        assert corpus.total_audio_seconds() == pytest.approx(
            sum(u.duration for u in corpus)
        )
