"""Tests for LRE-shaped corpus bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.splits import CorpusConfig, make_corpus_bundle


class TestCorpusConfig:
    def test_defaults_valid(self):
        CorpusConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_languages": 1},
            {"train_per_language": 0},
            {"durations": ()},
            {"durations": (30.0, -1.0)},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            CorpusConfig(**kwargs)


class TestMakeCorpusBundle:
    def test_bundle_shapes(self, tiny_bundle, tiny_config):
        cfg = tiny_config
        assert len(tiny_bundle.registry) == cfg.n_languages
        assert len(tiny_bundle.train) == cfg.n_languages * cfg.train_per_language
        assert len(tiny_bundle.dev) == cfg.n_languages * cfg.dev_per_language
        assert set(tiny_bundle.test) == set(cfg.durations)
        for d in cfg.durations:
            assert (
                len(tiny_bundle.test[d])
                == cfg.n_languages * cfg.test_per_language
            )

    def test_deterministic(self, tiny_config):
        a = make_corpus_bundle(tiny_config)
        b = make_corpus_bundle(tiny_config)
        np.testing.assert_array_equal(a.train[0].phones, b.train[0].phones)
        assert a.language_names == b.language_names

    def test_train_test_conditions_differ(self, tiny_bundle):
        d_train = np.mean([u.session.distortion() for u in tiny_bundle.train])
        pool = [
            u.session.distortion()
            for corpus in tiny_bundle.test.values()
            for u in corpus
        ]
        assert np.mean(pool) > d_train

    def test_test_durations_respected(self, tiny_bundle):
        for nominal, corpus in tiny_bundle.test.items():
            mean_dur = np.mean([u.duration for u in corpus])
            assert nominal * 0.8 <= mean_dur <= nominal * 1.2

    def test_language_names_order_stable(self, tiny_bundle):
        assert tiny_bundle.language_names == tiny_bundle.registry.names
