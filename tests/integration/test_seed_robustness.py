"""Seed robustness: the headline claim must not be a seed artefact.

Re-runs baseline vs DBA-M2 (V = 3) on a different corpus seed than every
other test in the suite and checks the paper's core direction — boosting
improves the mean single-frontend EER at every duration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_system, smoke_scale

ALTERNATE_SEED = 2010


@pytest.mark.slow
def test_dba_improves_on_alternate_seed():
    system = build_system(smoke_scale(ALTERNATE_SEED))
    baseline = system.baseline()
    boosted = system.dba(3, "M2", baseline)

    for duration in system.durations:
        base_mean = np.mean(
            [e for e, _ in system.frontend_metrics(baseline, duration).values()]
        )
        dba_mean = np.mean(
            [e for e, _ in system.frontend_metrics(boosted, duration).values()]
        )
        assert dba_mean < base_mean, (duration, base_mean, dba_mean)

    # The pseudo pool itself must be sane on this seed too.
    truth = system.pooled_test_labels()
    assert len(boosted.pseudo) > 10
    assert boosted.pseudo.error_rate(truth) < 0.3
