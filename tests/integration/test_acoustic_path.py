"""Integration of the acoustic (GMM/MLP-HMM Viterbi) decoding path.

The confusion-channel recognizer powers the sweeps; these tests prove the
*real* acoustic pipeline exercises the identical downstream code: train
small AMs, Viterbi-decode, extract supervectors, train VSMs, vote, boost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pipeline import PhonotacticSystem
from repro.corpus import CorpusConfig, make_corpus_bundle
from repro.frontend import FrontendSpec, build_frontends


@pytest.fixture(scope="module")
def acoustic_system():
    bundle = make_corpus_bundle(
        CorpusConfig(
            n_languages=3,
            n_families=2,
            train_per_language=10,
            dev_per_language=4,
            test_per_language=8,
            durations=(10.0,),
            seed=77,
        )
    )
    specs = (
        FrontendSpec("AC_GMM", "gmm", 18, tau=0.5, base_error=0.1),
        FrontendSpec("AC_ANN", "ann", 22, tau=0.5, base_error=0.1),
    )
    frontends = build_frontends(
        bundle, mode="acoustic", specs=specs, train_utterances=8, top_k=3
    )
    return PhonotacticSystem(
        bundle,
        frontends,
        SystemConfig(orders=(1, 2), svm_max_epochs=15, mmi_iterations=10),
    )


class TestAcousticPipeline:
    def test_baseline_beats_chance(self, acoustic_system):
        baseline = acoustic_system.baseline()
        labels = acoustic_system.labels_for("test@10.0")
        k = len(acoustic_system.bundle.registry)
        for scores in baseline.test_scores(10.0):
            acc = np.mean(np.argmax(scores, axis=1) == labels)
            assert acc > 1.5 / k

    def test_dba_runs_end_to_end(self, acoustic_system):
        baseline = acoustic_system.baseline()
        result = acoustic_system.dba(1, "M2", baseline)
        metrics = acoustic_system.frontend_metrics(result, 10.0)
        assert set(metrics) == {"AC_GMM", "AC_ANN"}
        for eer, _ in metrics.values():
            assert 0.0 <= eer <= 60.0

    def test_decoded_sausages_are_posterior_rich(self, acoustic_system):
        fe = acoustic_system.frontends[0]
        utt = acoustic_system.bundle.test[10.0][0]
        sausage = fe.decode(utt, 0)
        # At least some slots must carry real alternatives (not 1-best).
        assert any(slot.phones.size > 1 for slot in sausage.slots)
