"""End-to-end integration tests: the paper's qualitative claims.

These run the full confusion-mode pipeline at smoke scale (seconds, not
minutes) and assert the *shape* of the paper's results — who wins, in
which direction — with tolerances suited to the reduced scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_system, smoke_scale, trdba_composition


@pytest.fixture(scope="module")
def system():
    return build_system(smoke_scale())


@pytest.fixture(scope="module")
def baseline(system):
    return system.baseline()


@pytest.fixture(scope="module")
def dba_m2(system, baseline):
    return system.dba(3, "M2", baseline)


class TestBaselineShape:
    def test_eers_in_plausible_band(self, system, baseline):
        for duration in (10.0, 3.0):
            metrics = system.frontend_metrics(baseline, duration)
            for name, (eer, c_avg) in metrics.items():
                assert 2.0 < eer < 48.0, (duration, name, eer)
                assert 2.0 < c_avg < 48.0

    def test_shorter_utterances_harder(self, system, baseline):
        m10 = system.frontend_metrics(baseline, 10.0)
        m3 = system.frontend_metrics(baseline, 3.0)
        mean10 = np.mean([eer for eer, _ in m10.values()])
        mean3 = np.mean([eer for eer, _ in m3.values()])
        assert mean3 > mean10

    def test_frontend_quality_ordering(self, system, baseline):
        # Paper Table 4: EN_DNN is the best frontend, CZ the worst.
        metrics = system.frontend_metrics(baseline, 10.0)
        eers = {name: eer for name, (eer, _) in metrics.items()}
        assert eers["EN_DNN"] == min(eers.values())
        assert eers["CZ"] == max(eers.values())

    def test_fusion_beats_average_frontend(self, system, baseline):
        for duration in (10.0, 3.0):
            fused_eer, _ = system.fused_metrics([baseline], duration)
            singles = [
                eer
                for eer, _ in system.frontend_metrics(
                    baseline, duration
                ).values()
            ]
            assert fused_eer < np.mean(singles)


class TestTable1Shape:
    def test_pool_monotonicity(self, system, baseline):
        from repro.core import vote_count_matrix

        counts = vote_count_matrix(baseline.pooled_test_scores())
        rows = trdba_composition(counts, system.pooled_test_labels())
        sizes = [r.n_selected for r in rows]        # V = 6 .. 1
        errors = [r.error_rate for r in rows]
        assert sizes == sorted(sizes)               # pool grows as V drops
        finite = [e for e in errors if np.isfinite(e)]
        # Error grows (weakly) as the pool loosens.
        assert all(b >= a - 0.02 for a, b in zip(finite, finite[1:]))

    def test_moderate_threshold_pool_clean_and_usable(
        self, system, dba_m2
    ):
        assert len(dba_m2.pseudo) > 20
        err = dba_m2.pseudo.error_rate(system.pooled_test_labels())
        assert err < 0.25


class TestDBAImproves:
    def test_m2_improves_mean_frontend_eer(self, system, baseline, dba_m2):
        for duration in (10.0, 3.0):
            base_mean = np.mean(
                [e for e, _ in system.frontend_metrics(baseline, duration).values()]
            )
            dba_mean = np.mean(
                [e for e, _ in system.frontend_metrics(dba_m2, duration).values()]
            )
            assert dba_mean < base_mean, duration

    def test_m1_improves_mean_frontend_eer_at_3s(self, system, baseline):
        dba_m1 = system.dba(3, "M1", baseline)
        base_mean = np.mean(
            [e for e, _ in system.frontend_metrics(baseline, 3.0).values()]
        )
        m1_mean = np.mean(
            [e for e, _ in system.frontend_metrics(dba_m1, 3.0).values()]
        )
        assert m1_mean < base_mean + 2.0  # at worst roughly on par

    def test_relative_gain_larger_at_short_duration(
        self, system, baseline, dba_m2
    ):
        """Paper: 1.8 % rel. @30s grows to 15.35 % rel. @3s."""

        def mean_eer(result, duration):
            return np.mean(
                [e for e, _ in system.frontend_metrics(result, duration).values()]
            )

        gain10 = 1.0 - mean_eer(dba_m2, 10.0) / mean_eer(baseline, 10.0)
        gain3 = 1.0 - mean_eer(dba_m2, 3.0) / mean_eer(baseline, 3.0)
        assert gain3 > 0.0
        assert gain3 > gain10 - 0.05


class TestCostClaim:
    def test_phi_work_shared_eq18(self, system, baseline, dba_m2):
        """Decoding/SV-generation ran once despite baseline + DBA (Eq. 18)."""
        timer = system.timer
        n_corpora = 2 + len(system.durations)  # train, dev, tests
        n_frontends = len(system.frontends)
        assert timer.calls("decoding") == n_corpora * n_frontends
        assert timer.calls("sv_generation") == n_corpora * n_frontends
        # Modeling ran once for baseline and once per DBA pass.  Under
        # the seed's reference decode path its cost was small next to
        # the φ map (the Eq. 19 claim, paper Table 5); the batched fast
        # path (docs/execution.md) has since collapsed φ to the same
        # order as SVM training at smoke scale, so the profile check is
        # a bound rather than a domination claim — modeling must stay
        # within a small factor of the φ work whose sharing it rides on.
        phi = timer.elapsed("decoding") + timer.elapsed("sv_generation")
        assert timer.elapsed("svm_training") < 5.0 * phi
