"""Cross-module property tests on probabilistic invariants.

These hold for *any* inputs, so hypothesis drives them with random
corpora, emissions and model parameters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.frontend.am.train import chain_states, force_align
from repro.ngram.lm import WittenBellLM


@st.composite
def random_corpora(draw):
    n_phones = draw(st.integers(2, 6))
    n_seqs = draw(st.integers(1, 5))
    seqs = []
    for _ in range(n_seqs):
        n = draw(st.integers(0, 15))
        seqs.append(
            np.array(
                draw(
                    st.lists(
                        st.integers(0, n_phones - 1), min_size=n, max_size=n
                    )
                ),
                dtype=np.int64,
            )
        )
    return n_phones, seqs


class TestLMInvariants:
    @given(random_corpora(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_conditionals_always_sum_to_one(self, corpus, order):
        n_phones, seqs = corpus
        lm = WittenBellLM(n_phones, order=order).fit(seqs)
        contexts = [()]
        if order >= 2:
            contexts += [(p,) for p in range(n_phones)]
        if order >= 3:
            contexts += [(0, p) for p in range(n_phones)]
        for ctx in contexts:
            total = sum(lm.prob(ctx, p) for p in range(n_phones))
            assert total == pytest.approx(1.0, abs=1e-8)

    @given(random_corpora())
    @settings(max_examples=30, deadline=None)
    def test_probabilities_strictly_positive(self, corpus):
        n_phones, seqs = corpus
        lm = WittenBellLM(n_phones, order=2).fit(seqs)
        for p in range(n_phones):
            assert lm.prob((), p) > 0.0
            assert lm.prob((0,), p) > 0.0


@st.composite
def alignment_problems(draw):
    n_phones = draw(st.integers(2, 4))
    states_per_phone = draw(st.integers(1, 3))
    seq_len = draw(st.integers(1, 4))
    seq = np.array(
        draw(
            st.lists(
                st.integers(0, n_phones - 1),
                min_size=seq_len,
                max_size=seq_len,
            )
        ),
        dtype=np.int64,
    )
    chain_len = seq_len * states_per_phone
    t = draw(st.integers(chain_len, chain_len + 10))
    rng_seed = draw(st.integers(0, 1000))
    loglik = np.random.default_rng(rng_seed).normal(
        size=(t, n_phones * states_per_phone)
    )
    return loglik, seq, states_per_phone


class TestForceAlignInvariants:
    @given(alignment_problems())
    @settings(max_examples=50, deadline=None)
    def test_alignment_is_a_monotone_chain_walk(self, problem):
        loglik, seq, s = problem
        labels = force_align(loglik, seq, s)
        chain = chain_states(seq, s)
        # Adjacent identical chain states (same phone repeated at 1 state
        # per phone) make the walk reconstruction ambiguous - the
        # alignment is still valid, but this check cannot verify it.
        assume(np.all(np.diff(chain) != 0))
        # Map each frame's state to its chain position; the walk must
        # start at 0, end at the last position, and advance by 0 or 1.
        position = np.zeros(labels.size, dtype=int)
        pos = 0
        for t, state in enumerate(labels):
            # advance while the next chain slot matches better
            if pos + 1 < chain.size and chain[pos] != state:
                pos += 1
            assert chain[pos] == state, "state off the chain"
            position[t] = pos
        assert position[0] == 0
        assert position[-1] == chain.size - 1
        assert np.all(np.diff(position) >= 0)
        assert np.all(np.diff(position) <= 1)

    @given(alignment_problems())
    @settings(max_examples=30, deadline=None)
    def test_every_chain_state_occupied(self, problem):
        loglik, seq, s = problem
        labels = force_align(loglik, seq, s)
        # Each chain position must get at least one frame (left-to-right
        # HMM with no skips).
        chain = chain_states(seq, s)
        assume(np.all(np.diff(chain) != 0))
        counts: dict[int, int] = {}
        pos = 0
        for state in labels:
            if pos + 1 < chain.size and chain[pos] != state:
                pos += 1
            counts[pos] = counts.get(pos, 0) + 1
        assert len(counts) == chain.size
