"""Ablation — Viterbi beam width: the speed–accuracy dial.

The beam decoder variant (``DecoderConfig.beam``, exposed through
``build_frontends(decode_beam=...)``) prunes composite states whose DP
score falls more than the half-width below the frame best.  This bench
sweeps the width on a synthetic acoustic battery and quantifies the
contract documented in docs/execution.md: a generous beam reproduces the
exact decoder's 1-best output (pruning never touches the surviving
path), while a tight beam starts changing decodes — which is exactly why
any finite beam enters φ stage keys instead of silently reusing exact
artifacts.

Results land in ``benchmarks/results/ablation_beam.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.corpus.phoneset import PhoneSet
from repro.frontend.am.gmm import DiagonalGMM
from repro.frontend.am.hmm import GMMEmission, PhoneHMMSet
from repro.frontend.decoder import DecoderConfig, ViterbiDecoder

N_PHONES = 10
STATES_PER_PHONE = 2
FEATURE_DIM = 4
N_UTTERANCES = 24
PHONES_PER_UTTERANCE = 12
FRAMES_PER_PHONE = 6
#: None = exact decode; widths in log-score units.
BEAMS = (None, 10.0, 3.0, 1.0)


def _battery(rng) -> tuple[PhoneHMMSet, PhoneSet, np.ndarray]:
    """A phone-loop HMM set over moderately separated prototypes.

    The separation/noise ratio is deliberately tight: competing paths
    must stay within a few log-score units of the winner, otherwise
    every beam in the sweep reproduces the exact decode and the ablation
    measures nothing.
    """
    means = rng.normal(0.0, 1.5, size=(N_PHONES, FEATURE_DIM))
    gmms = []
    for p in range(N_PHONES):
        for _ in range(STATES_PER_PHONE):
            gmms.append(
                DiagonalGMM.from_parameters(
                    means=means[p : p + 1],
                    variances=np.ones((1, FEATURE_DIM)),
                    weights=np.array([1.0]),
                )
            )
    hmms = PhoneHMMSet(N_PHONES, STATES_PER_PHONE, GMMEmission(gmms))
    phone_set = PhoneSet("beam", tuple(f"p{i}" for i in range(N_PHONES)))
    return hmms, phone_set, means


def _render_corpus(means, rng) -> list[np.ndarray]:
    """Noisy frame sequences for random phone strings."""
    corpus = []
    for _ in range(N_UTTERANCES):
        seq = rng.integers(0, N_PHONES, size=PHONES_PER_UTTERANCE)
        frames = np.vstack(
            [
                means[p]
                + rng.normal(0, 2.0, size=(FRAMES_PER_PHONE, FEATURE_DIM))
                for p in seq
            ]
        )
        corpus.append(frames)
    return corpus


def test_ablation_beam_width(report, benchmark):
    rng = np.random.default_rng(20260808)
    hmms, phone_set, means = _battery(rng)
    corpus = _render_corpus(means, rng)

    def sweep():
        rows = {}
        exact = None
        for beam in BEAMS:
            decoder = ViterbiDecoder(
                hmms, phone_set, DecoderConfig(beam=beam)
            )
            t0 = time.perf_counter()
            sausages = decoder.decode_batch(corpus)
            elapsed = time.perf_counter() - t0
            decoded = [s.best_phones() for s in sausages]
            if exact is None:
                exact = decoded
            matches = sum(
                np.array_equal(d, e) for d, e in zip(decoded, exact)
            )
            rows[beam] = (elapsed, matches / len(corpus))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'beam':<8}{'decode s':>10}{'1-best match':>14}",
    ]
    for beam, (elapsed, agree) in rows.items():
        label = "exact" if beam is None else f"{beam:g}"
        lines.append(f"{label:<8}{elapsed:>10.3f}{100 * agree:>13.1f}%")
    report("ablation_beam", "\n".join(lines))

    # A generous beam never prunes the winning path: 1-best output is
    # identical to the exact decoder on every utterance.
    assert rows[10.0][1] == 1.0
    # Tightening the beam is a genuine accuracy dial — decodes must
    # degrade monotonically through the sweep (a flat sweep would mean
    # the knob is dead and its φ stage-key separation pointless).
    assert rows[1.0][1] < rows[3.0][1] < rows[10.0][1]
