"""Serving under overload — the server must degrade, not hang.

PR 4 hardened :mod:`repro.serve` against the failure mode where a
stalled frontend (or a dead batcher) silently wedged every subsequent
request.  This bench drives the hardened server into exactly that
regime and asserts the new contract:

- one frontend is stalled via the :mod:`repro.serve.faults` hook, so
  every batch takes far longer than the request deadline;
- a saturating client fleet hits ``/score`` concurrently against a
  deliberately tiny admission queue;
- every request must terminate with 200, 429 (queue full) or 503
  (deadline exceeded) — never hang, never 500;
- ``/score`` p99 wall time stays bounded by the deadline plus slack,
  because the handler gives up on the deadline instead of riding out
  the stall;
- ``/healthz`` keeps answering throughout the storm (the health path
  shares nothing with the wedged batcher).

Results land in ``benchmarks/results/serve_overload.txt``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    ScoringEngine,
    export_trained,
    make_server,
    utterance_to_json,
)
from repro.serve.faults import FaultPlan

#: Concurrent clients and sequential requests per client.
FLEET = 6
REQUESTS_PER_CLIENT = 3

#: Engine request deadline and the per-batch stall injected on one
#: frontend.  The stall dwarfs the deadline, so no request can be
#: served while the fault is armed — the server must shed load.
DEADLINE_S = 0.25
STALL_S = 1.0

#: Observed /score wall time may exceed the deadline by queueing and
#: scheduling overhead; keep the gate generous for shared CI boxes.
SLACK_S = 2.0


@pytest.fixture(scope="module")
def trained(lab):
    """The lab's baseline system in exported (score-ready) form."""
    return export_trained(lab.system, [lab.baseline()], lab.config)


@pytest.fixture(scope="module")
def batch(lab):
    """Utterances from the longest-duration test corpus."""
    duration = max(lab.durations)
    corpus = lab.system.corpus_for(f"test@{duration}")
    return list(corpus.utterances)[: FLEET * REQUESTS_PER_CLIENT]


def _post_score(url: str, payload: bytes) -> int:
    request = urllib.request.Request(
        url + "/score",
        data=payload,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status
    except urllib.error.HTTPError as exc:
        return exc.code


def test_serve_overload_bounded(trained, batch, report, benchmark):
    """Saturate a stalled server; it must answer fast or not at all."""
    stalled = trained.frontends[0].name
    plan = FaultPlan.parse(f"stall:{stalled}:{STALL_S}")
    engine = ScoringEngine(
        trained,
        batch_window=0.0,
        max_batch=4,
        max_queue=4,
        cache_entries=0,
        deadline=DEADLINE_S,
        faults=plan,
    )
    srv = make_server(engine, port=0)
    serve_thread = threading.Thread(target=srv.serve_forever, daemon=True)
    serve_thread.start()
    host, port = srv.server_address[:2]
    url = f"http://{host}:{port}"

    statuses: list[int] = []
    latencies: list[float] = []
    record_lock = threading.Lock()
    healthz_ok = 0
    healthz_bad = 0
    stop = threading.Event()

    def poll_healthz() -> None:
        nonlocal healthz_ok, healthz_bad
        while not stop.is_set():
            try:
                with urllib.request.urlopen(
                    url + "/healthz", timeout=5
                ) as resp:
                    body = json.loads(resp.read())
                    ok = resp.status == 200 and "status" in body
            except OSError:
                ok = False
            with record_lock:
                if ok:
                    healthz_ok += 1
                else:
                    healthz_bad += 1
            time.sleep(0.05)

    def client(worker: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            utterance = batch[worker * REQUESTS_PER_CLIENT + i]
            payload = json.dumps(
                {"utterances": [utterance_to_json(utterance)]}
            ).encode()
            t0 = time.perf_counter()
            status = _post_score(url, payload)
            elapsed = time.perf_counter() - t0
            with record_lock:
                statuses.append(status)
                latencies.append(elapsed)

    def storm() -> None:
        poller = threading.Thread(target=poll_healthz, daemon=True)
        poller.start()
        workers = [
            threading.Thread(target=client, args=(w,)) for w in range(FLEET)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=120)
        stop.set()
        poller.join(timeout=10)

    try:
        benchmark.pedantic(storm, rounds=1, iterations=1)
        stats = engine.stats()
    finally:
        plan.clear()  # lift the stall so teardown drains quickly
        srv.shutdown()
        srv.server_close()
        engine.close()
        serve_thread.join(timeout=10)

    total = FLEET * REQUESTS_PER_CLIENT
    by_status = {
        code: sum(1 for s in statuses if s == code)
        for code in sorted(set(statuses))
    }
    p50 = float(np.percentile(latencies, 50.0))
    p99 = float(np.percentile(latencies, 99.0))
    lines = [
        f"Serving overload (stalled frontend {stalled}, "
        f"{FLEET} clients x {REQUESTS_PER_CLIENT} requests, "
        f"deadline {DEADLINE_S:.2f} s, stall {STALL_S:.2f} s)",
        "",
        "status counts: "
        + "  ".join(f"{code}:{n}" for code, n in by_status.items()),
        f"/score wall p50 {p50:.3f} s  p99 {p99:.3f} s  "
        f"(gate: p99 <= {DEADLINE_S + SLACK_S:.2f} s)",
        f"/healthz polls ok {healthz_ok}  failed {healthz_bad}",
        f"engine: rejected {stats['rejected']}  "
        f"expired {stats['expired']}  cancelled {stats['cancelled']}  "
        f"batcher_restarts {stats['batcher_restarts']}",
    ]
    report("serve_overload", "\n".join(lines))
    benchmark.extra_info["p99_s"] = p99
    benchmark.extra_info["statuses"] = by_status

    # Every request terminated, with a well-defined overload status.
    assert len(statuses) == total
    assert set(statuses) <= {200, 429, 503}
    # Load was actually shed: the stall guarantees nothing completes
    # inside the deadline, so at least one request was turned away.
    assert by_status.get(429, 0) + by_status.get(503, 0) > 0
    # The handler answers on the deadline, not on the stall.
    assert p99 <= DEADLINE_S + SLACK_S
    # Health stayed reachable for the whole storm.
    assert healthz_ok > 0
    assert healthz_bad == 0
    # The batcher survived: no supervisor restarts were needed for a
    # stall (it is slow, not dead), and the engine still reports.
    assert stats["queue_depth"] == 0 or stats["queue_depth"] <= 4
