"""Chaos gate for the offline fault-tolerance ladder (repro.faults).

Two drills against a real campaign:

1. **Transient faults are invisible.**  With ``REPRO_FAULTS`` injecting
   a bounded number of failures into the φ stages, the SVM fits and the
   artifact-store I/O, a campaign run under a
   :class:`~repro.faults.RetryPolicy` must finish cleanly and regenerate
   **bitwise-identical** tables to the fault-free run — retries absorb
   the damage, determinism survives the detour (the backoff jitter is
   seeded, and stage values are functions of their inputs only).

2. **A permanently dead frontend degrades, not aborts.**  With a
   persistent ``error:phi/<frontend>`` fault, an ``on_error="degrade"``
   campaign must finish on the surviving battery, list the drop in the
   runlog manifest, and fuse with Eq. 20 weights renormalized over the
   survivors — the offline analogue of serve's circuit breakers.

Results land in ``benchmarks/results/exec_faults*.txt``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import bench_scale, build_system, run_campaign, smoke_scale
from repro.faults import RetryPolicy
from repro.faults.injection import ENV_VAR, reset_ambient_plan
from repro.obs import trace, write_runlog
from repro.obs.metrics import default_registry

VARIANTS = ("M2",)
FUSION_THRESHOLD = 2

#: Transient chaos: two φ failures, two store I/O failures, one SVM-fit
#: failure — all within a 3-attempt retry budget.
TRANSIENT_SPEC = "error:phi:2,error:store:2,error:svm_train:1"


@pytest.fixture(scope="module")
def campaign_config():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    config = smoke_scale() if scale == "smoke" else bench_scale()
    from dataclasses import replace

    return replace(config, vote_thresholds=(FUSION_THRESHOLD,))


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_ambient_plan()
    yield
    reset_ambient_plan()


def _run(config, *, spec=None, monkeypatch=None, **system_kwargs):
    """One fresh-system campaign under an optional fault spec."""
    if spec is not None:
        monkeypatch.setenv(ENV_VAR, spec)
    else:
        monkeypatch.delenv(ENV_VAR, raising=False)
    reset_ambient_plan()
    system = build_system(config, **system_kwargs)
    t0 = time.perf_counter()
    result = run_campaign(
        config,
        system=system,
        variants=VARIANTS,
        fusion_threshold=FUSION_THRESHOLD,
    )
    return time.perf_counter() - t0, result, system


def test_transient_faults_yield_identical_tables(
    campaign_config, report, benchmark, monkeypatch, tmp_path_factory
):
    """Retries absorb bounded chaos with bitwise-identical output."""
    from repro.exec import ArtifactStore

    registry = default_registry()
    # The chaos pass writes through a store so the ``error:store``
    # directives exercise the retry wrapping around store I/O too.
    store_dir = tmp_path_factory.mktemp("chaos-store")

    def both_runs():
        registry.reset()
        clean_s, clean, _ = _run(campaign_config, monkeypatch=monkeypatch)
        registry.reset()
        chaos_s, chaos, _ = _run(
            campaign_config,
            spec=TRANSIENT_SPEC,
            monkeypatch=monkeypatch,
            retry=RetryPolicy(max_attempts=3, seed=0),
            store=ArtifactStore(store_dir),
        )
        attempts = registry.counter("exec.retry.attempts").value
        exhausted = registry.counter("exec.retry.exhausted").value
        return clean_s, clean, chaos_s, chaos, attempts, exhausted

    clean_s, clean, chaos_s, chaos, attempts, exhausted = (
        benchmark.pedantic(both_runs, rounds=1, iterations=1)
    )
    overhead = chaos_s / clean_s
    lines = [
        "Chaos gate: transient faults under RetryPolicy(max_attempts=3)",
        f"fault spec: {TRANSIENT_SPEC}",
        "",
        f"{'pass':<10}{'wall s':>10}{'retries':>10}",
        f"{'clean':<10}{clean_s:>10.3f}{0:>10.0f}",
        f"{'chaos':<10}{chaos_s:>10.3f}{attempts:>10.0f}",
        "",
        f"chaos/clean wall-clock: {overhead:.2f}x",
        f"tables bitwise identical: {chaos.to_text() == clean.to_text()}",
    ]
    report("exec_faults_transient", "\n".join(lines))
    benchmark.extra_info["retry_attempts"] = attempts
    # The gate: every injected fault was retried away, none exhausted,
    # and the regenerated tables are byte-for-byte the clean ones.
    assert attempts >= 5
    assert exhausted == 0
    assert chaos.degraded == {} and chaos.quarantined == {}
    assert chaos.to_text() == clean.to_text()


def test_dead_frontend_degrades_not_aborts(
    campaign_config, report, benchmark, tmp_path_factory, monkeypatch
):
    """A permanently failing frontend is dropped; survivors finish."""
    # Pick the victim from a throwaway battery build (names are a pure
    # function of the config, so the campaign system agrees).
    victim = build_system(campaign_config).frontends[-1].name
    runlog_dir = tmp_path_factory.mktemp("runlog")

    def degraded_run():
        monkeypatch.setenv(ENV_VAR, f"error:phi/{victim}:1000000")
        reset_ambient_plan()
        system = build_system(
            campaign_config,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_error="degrade",
        )
        trace.start_trace("chaos-campaign")
        try:
            t0 = time.perf_counter()
            result = run_campaign(
                campaign_config,
                system=system,
                variants=VARIANTS,
                fusion_threshold=FUSION_THRESHOLD,
            )
            wall = time.perf_counter() - t0
        finally:
            root = trace.stop_trace()
        manifest = write_runlog(runlog_dir / "run", root)
        return wall, result, system, manifest

    wall, result, system, manifest = benchmark.pedantic(
        degraded_run, rounds=1, iterations=1
    )
    survivors = [fe.name for fe in system.frontends]
    lines = [
        "Chaos gate: permanently dead frontend under on_error='degrade'",
        f"victim: {victim}",
        "",
        f"campaign finished in {wall:.3f}s on {survivors}",
        f"degraded: {result.degraded}",
        f"runlog manifest: {manifest}",
    ]
    report("exec_faults_degraded", "\n".join(lines))
    # The campaign finished on the survivors and reported the drop.
    assert set(result.degraded) == {victim}
    assert result.frontends == survivors
    assert victim not in survivors and survivors
    assert victim not in result.to_text()
    # The runlog manifest carries the degradation for post-mortems.
    recorded = json.loads((manifest / "manifest.json").read_text())
    assert recorded["attrs"]["degraded_frontends"] == [victim]
