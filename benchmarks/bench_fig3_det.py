"""Figure 3 — DET curves, baseline vs (DBA-M1)+(DBA-M2) fusion (§5.3).

Regenerates the paper's Fig. 3: detection-error-tradeoff curves of the
six-frontend fused baseline and the fused (DBA-M1)+(DBA-M2) system at
V = 3, per duration.  The figure is emitted as an ASCII probit plot plus
the raw (P_fa, P_miss) series.  Expected shape: the DBA curve lies on or
below the baseline curve.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.det import det_curve, render_det_ascii
from repro.metrics.svg import save_det_svg
from repro.metrics.eer import split_trials

THRESHOLD = 3


def _curves(lab, duration):
    baseline = lab.baseline()
    m1 = lab.dba(THRESHOLD, "M1")
    m2 = lab.dba(THRESHOLD, "M2")
    labels = lab.system.labels_for(f"test@{duration}")
    base_scores = lab.system.fused_scores([baseline], duration)
    dba_scores = lab.system.fused_scores([m1, m2], duration)
    curves = {}
    for name, scores in (("PPRVSM", base_scores), ("dba", dba_scores)):
        tar, non = split_trials(scores, labels)
        curves[name] = det_curve(tar, non)
    return curves


def _mean_miss_at(p_fa_grid, curve):
    """Interpolated P_miss at the given P_fa operating points."""
    p_fa, p_miss = curve
    order = np.argsort(p_fa)
    return np.interp(p_fa_grid, p_fa[order], p_miss[order])


def test_fig3_det_curves(lab, report, benchmark):
    duration = min(lab.durations)  # the paper's most challenging case

    curves = benchmark.pedantic(
        _curves, args=(lab, duration), rounds=1, iterations=1
    )
    art = render_det_ascii(curves)
    # Also dump a compact numeric series for plotting elsewhere.
    series_lines = []
    grid = np.array([0.02, 0.05, 0.10, 0.20, 0.30])
    for name, curve in curves.items():
        miss = _mean_miss_at(grid, curve)
        series_lines.append(
            f"{name:>8}: "
            + "  ".join(
                f"P_fa={g:.2f}->P_miss={m:.3f}" for g, m in zip(grid, miss)
            )
        )
    report(
        f"fig3_det_{int(duration)}s",
        art + "\n\n" + "\n".join(series_lines),
    )
    from conftest import RESULTS_DIR

    save_det_svg(
        RESULTS_DIR / f"fig3_det_{int(duration)}s.svg",
        curves,
        title=f"DET, fused baseline vs DBA ({int(duration)} s)",
    )

    base_miss = _mean_miss_at(grid, curves["PPRVSM"])
    dba_miss = _mean_miss_at(grid, curves["dba"])
    # DBA's curve must not lie above the baseline's on average.
    assert dba_miss.mean() <= base_miss.mean() + 0.02


def test_fig3_det_all_durations(lab, report, benchmark):
    def regenerate():
        return {d: _curves(lab, d) for d in lab.durations}

    by_duration = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    blocks = []
    for duration, curves in by_duration.items():
        blocks.append(f"--- {int(duration)}s ---")
        blocks.append(render_det_ascii(curves, height=16, width=48))
    report("fig3_det_all", "\n".join(blocks))
