"""Ablation — the Eq. 13 vote criterion vs a naive top-1 margin rule.

DESIGN.md calls out the strict "winner positive, all others negative"
criterion as a design choice worth ablating.  This bench compares three
pseudo-label selectors at matched pool sizes:

- **eq13**: the paper's criterion + vote threshold (the shipped system);
- **margin**: label every test utterance whose top-1 vs top-2 score margin
  (averaged over subsystems) clears a percentile cut;
- **top1**: just take every utterance's fused arg-max (self-training with
  no confidence gate).

Expected: the gated pools are far cleaner than ungated self-training.
Whether gating also wins end-to-end depends on pool noise: at the paper's
scale (loose pools ~32 % label error) it does; this reproduction's pools
are cleaner, so volume can win — the bench reports both numbers.
"""

from __future__ import annotations

import numpy as np

from repro.core import select_pseudo_labels, vote_count_matrix
from repro.core.dba import PseudoLabels, build_dba_training_set
from repro.svm.vsm import VSM

THRESHOLD = 3


def _margin_pseudo(score_matrices, pool_size) -> PseudoLabels:
    stacked = np.mean(
        [(s - s.mean()) / (s.std() + 1e-12) for s in score_matrices], axis=0
    )
    order = np.argsort(stacked, axis=1)
    margin = (
        stacked[np.arange(len(stacked)), order[:, -1]]
        - stacked[np.arange(len(stacked)), order[:, -2]]
    )
    chosen = np.argsort(margin)[::-1][:pool_size]
    chosen = np.sort(chosen)
    return PseudoLabels(
        indices=chosen,
        labels=np.argmax(stacked[chosen], axis=1),
        votes=np.zeros(chosen.size, dtype=np.int64),
    )


def _top1_pseudo(score_matrices) -> PseudoLabels:
    stacked = np.mean(
        [(s - s.mean()) / (s.std() + 1e-12) for s in score_matrices], axis=0
    )
    indices = np.arange(stacked.shape[0])
    return PseudoLabels(
        indices=indices,
        labels=np.argmax(stacked, axis=1),
        votes=np.zeros(indices.size, dtype=np.int64),
    )


def _boosted_mean_eer(lab, pseudo: PseudoLabels, duration: float) -> float:
    """Retrain every subsystem M2-style on the given pool; mean EER."""
    system = lab.system
    y_train = system.labels_for("train")
    eers = []
    for q, frontend in enumerate(system.frontends):
        x_train = system.raw_matrix(frontend, "train")
        x_pool = system.pooled_test_matrix(frontend)
        x_dba, y_dba = build_dba_training_set(
            "M2", x_train, y_train, x_pool, pseudo
        )
        vsm = VSM(
            len(frontend.phone_set),
            len(system.bundle.registry),
            orders=system.system.orders,
            max_epochs=system.system.svm_max_epochs,
            seed=system.system.seed + 500 + q,
        )
        vsm.fit_matrix(x_dba, y_dba)
        from repro.core.pipeline import calibrate_scores, evaluate_scores

        dev = vsm.score_matrix(system.raw_matrix(frontend, "dev"))
        test = vsm.score_matrix(system.raw_matrix(frontend, f"test@{duration}"))
        calibrated = calibrate_scores(
            [dev], system.labels_for("dev"), [test], system=system.system
        )
        eer, _ = evaluate_scores(
            calibrated, system.labels_for(f"test@{duration}")
        )
        eers.append(eer)
    return float(np.mean(eers))


def test_ablation_vote_criterion(lab, report, benchmark):
    duration = min(lab.durations)
    baseline = lab.baseline()
    pooled = baseline.pooled_test_scores()
    truth = lab.pooled_labels()

    def run():
        counts = vote_count_matrix(pooled)
        eq13 = select_pseudo_labels(counts, THRESHOLD)
        margin = _margin_pseudo(pooled, len(eq13))
        top1 = _top1_pseudo(pooled)
        rows = {}
        for name, pseudo in (
            ("eq13", eq13),
            ("margin", margin),
            ("top1", top1),
        ):
            rows[name] = (
                len(pseudo),
                pseudo.error_rate(truth),
                _boosted_mean_eer(lab, pseudo, duration),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'selector':<10}{'pool':>6}{'pool err':>10}{'boosted EER':>13}"
    ]
    for name, (size, err, eer) in rows.items():
        lines.append(
            f"{name:<10}{size:>6d}{100 * err:>9.2f}%{eer:>12.2f}%"
        )
    report("ablation_vote", "\n".join(lines))

    # Mechanical sanity + the relationships that hold at every scale:
    # the gated pool is far cleaner than ungated self-training labels...
    assert rows["eq13"][1] < rows["top1"][1]
    # ...and every selector's boosted system should remain usable.  (At
    # the paper's scale the loose pools carry ~32 % label error and the
    # Eq. 13 gate is what keeps boosting viable; this reproduction's
    # pools are cleaner across the board, so ungated self-training can
    # match or beat gating here — an honest scale artefact recorded in
    # EXPERIMENTS.md.)
    for name in ("eq13", "margin", "top1"):
        assert np.isfinite(rows[name][2])
        assert rows[name][2] < 45.0
