"""Serving throughput — micro-batching and supervector-cache economics.

The online service (:mod:`repro.serve`) claims two speed mechanisms on
top of the offline pipeline: matrix-level micro-batching of the SVM
product and an LRU cache of per-utterance subsystem scores.  This bench
measures both over an exported baseline system:

- single-utterance p95 latency through the synchronous scoring path
  (the floor an interactive caller sees on a cold cache);
- batched throughput with a cold cache vs a warm cache.  A warm hit
  skips decode + φ(x) + SVM product (Table 5's dominant stages), so the
  warm pass must be at least 5x faster — asserted below, together with
  nonzero cache-hit accounting in the engine's ``stats()``.

Latency percentiles are reported **per path**: a blended p95 over both
passes is dominated by the single cold batch and says nothing about
either regime, so the cold-path and warm-path distributions are sliced
out of the engine's latency reservoir separately.  The cold-path
figures are the honest single-worker baseline the cluster scaling bench
(``bench_serve_scaling.py``) compares against.

Results land in ``benchmarks/results/serve_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import ScoringEngine, export_trained

#: The engine's per-request latency histogram (seconds).
LATENCY_METRIC = "serve.request_latency_s"


def _percentiles(samples: list[float]) -> tuple[float, float]:
    """(p50, p95) in milliseconds over one path's latency samples."""
    array = np.asarray(samples, dtype=np.float64) * 1e3
    return float(np.percentile(array, 50)), float(np.percentile(array, 95))

#: Cap on the utterance batch so the bench stays minutes-level at
#: bench scale (decoding dominates; see Table 5).
MAX_BATCH_UTTERANCES = 48


@pytest.fixture(scope="module")
def trained(lab):
    """The lab's baseline system in exported (score-ready) form."""
    return export_trained(lab.system, [lab.baseline()], lab.config)


@pytest.fixture(scope="module")
def batch(lab):
    """A fixed utterance batch from the longest-duration test corpus."""
    duration = max(lab.durations)
    corpus = lab.system.corpus_for(f"test@{duration}")
    return list(corpus.utterances)[:MAX_BATCH_UTTERANCES]


def test_serve_single_utterance_latency(trained, batch, benchmark):
    """p95 latency of one-at-a-time scoring on a cold cache."""
    engine = ScoringEngine(trained, cache_entries=0)
    queue = list(batch)

    def score_one():
        engine.score_utterances([queue.pop()])

    benchmark.pedantic(
        score_one, rounds=min(10, len(batch)), iterations=1
    )
    p95 = engine.stats()["latency_ms"]["p95"]
    benchmark.extra_info["p95_ms"] = p95
    assert p95 is not None and p95 > 0.0


def test_serve_batched_throughput_cold_vs_warm(
    trained, batch, report, benchmark
):
    """Cold vs warm batched throughput; warm must be >= 5x faster."""
    engine = ScoringEngine(trained, max_batch=32, cache_entries=None)

    def cold_then_warm():
        t0 = time.perf_counter()
        cold_scores = engine.score_utterances(batch)
        t1 = time.perf_counter()
        cold_n = len(
            engine.metrics.snapshot(include_samples=True)[LATENCY_METRIC][
                "samples"
            ]
        )
        warm_scores = engine.score_utterances(batch)
        t2 = time.perf_counter()
        assert (cold_scores == warm_scores).all()
        return t1 - t0, t2 - t1, cold_n

    cold_s, warm_s, cold_n = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    stats = engine.stats()
    n = len(batch)
    speedup = cold_s / warm_s
    # Slice the latency reservoir per path: observations [0, cold_n)
    # landed during the cold pass, the rest during the warm pass.  (Two
    # passes of <= 48 utterances never overflow the 512-slot
    # reservoir, so the slice is exact, not sampled.)
    samples = engine.metrics.snapshot(include_samples=True)[LATENCY_METRIC][
        "samples"
    ]
    cold_p50, cold_p95 = _percentiles(samples[:cold_n])
    warm_p50, warm_p95 = _percentiles(samples[cold_n:])
    lines = [
        "Serving throughput (exported baseline, "
        f"{len(trained.subsystems)} subsystems, {n} utterances)",
        "",
        f"{'pass':<12}{'wall s':>10}{'utt/s':>10}{'p50 ms':>10}{'p95 ms':>10}",
        f"{'cold':<12}{cold_s:>10.3f}{n / cold_s:>10.1f}"
        f"{cold_p50:>10.2f}{cold_p95:>10.2f}",
        f"{'warm':<12}{warm_s:>10.3f}{n / warm_s:>10.1f}"
        f"{warm_p50:>10.2f}{warm_p95:>10.2f}",
        "",
        f"warm/cold speedup: {speedup:.1f}x",
        f"cache hits {stats['cache']['hits']}  "
        f"misses {stats['cache']['misses']}  "
        f"hit rate {stats['cache']['hit_rate']:.2f}",
    ]
    report("serve_throughput", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cold_p95_ms"] = cold_p95
    benchmark.extra_info["warm_p95_ms"] = warm_p95
    # The split is meaningful only if the paths actually separate.
    assert warm_p95 <= cold_p95
    # The acceptance bar: a warm cache skips Table 5's dominant stages.
    assert speedup >= 5.0
    assert stats["cache"]["hits"] == n
    assert stats["cache"]["misses"] == n
