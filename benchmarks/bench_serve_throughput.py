"""Serving throughput — micro-batching and supervector-cache economics.

The online service (:mod:`repro.serve`) claims two speed mechanisms on
top of the offline pipeline: matrix-level micro-batching of the SVM
product and an LRU cache of per-utterance subsystem scores.  This bench
measures both over an exported baseline system:

- single-utterance p95 latency through the synchronous scoring path
  (the floor an interactive caller sees on a cold cache);
- batched throughput with a cold cache vs a warm cache.  A warm hit
  skips decode + φ(x) + SVM product (Table 5's dominant stages), so the
  warm pass must be at least 5x faster — asserted below, together with
  nonzero cache-hit accounting in the engine's ``stats()``.

Results land in ``benchmarks/results/serve_throughput.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import ScoringEngine, export_trained

#: Cap on the utterance batch so the bench stays minutes-level at
#: bench scale (decoding dominates; see Table 5).
MAX_BATCH_UTTERANCES = 48


@pytest.fixture(scope="module")
def trained(lab):
    """The lab's baseline system in exported (score-ready) form."""
    return export_trained(lab.system, [lab.baseline()], lab.config)


@pytest.fixture(scope="module")
def batch(lab):
    """A fixed utterance batch from the longest-duration test corpus."""
    duration = max(lab.durations)
    corpus = lab.system.corpus_for(f"test@{duration}")
    return list(corpus.utterances)[:MAX_BATCH_UTTERANCES]


def test_serve_single_utterance_latency(trained, batch, benchmark):
    """p95 latency of one-at-a-time scoring on a cold cache."""
    engine = ScoringEngine(trained, cache_entries=0)
    queue = list(batch)

    def score_one():
        engine.score_utterances([queue.pop()])

    benchmark.pedantic(
        score_one, rounds=min(10, len(batch)), iterations=1
    )
    p95 = engine.stats()["latency_ms"]["p95"]
    benchmark.extra_info["p95_ms"] = p95
    assert p95 is not None and p95 > 0.0


def test_serve_batched_throughput_cold_vs_warm(
    trained, batch, report, benchmark
):
    """Cold vs warm batched throughput; warm must be >= 5x faster."""
    engine = ScoringEngine(trained, max_batch=32, cache_entries=None)

    def cold_then_warm():
        t0 = time.perf_counter()
        cold_scores = engine.score_utterances(batch)
        t1 = time.perf_counter()
        warm_scores = engine.score_utterances(batch)
        t2 = time.perf_counter()
        assert (cold_scores == warm_scores).all()
        return t1 - t0, t2 - t1

    cold_s, warm_s = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    stats = engine.stats()
    n = len(batch)
    speedup = cold_s / warm_s
    p95 = stats["latency_ms"]["p95"]
    lines = [
        "Serving throughput (exported baseline, "
        f"{len(trained.subsystems)} subsystems, {n} utterances)",
        "",
        f"{'pass':<12}{'wall s':>10}{'utt/s':>10}",
        f"{'cold':<12}{cold_s:>10.3f}{n / cold_s:>10.1f}",
        f"{'warm':<12}{warm_s:>10.3f}{n / warm_s:>10.1f}",
        "",
        f"warm/cold speedup: {speedup:.1f}x",
        f"cache hits {stats['cache']['hits']}  "
        f"misses {stats['cache']['misses']}  "
        f"hit rate {stats['cache']['hit_rate']:.2f}",
        f"request p95 latency: {p95:.2f} ms",
    ]
    report("serve_throughput", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    # The acceptance bar: a warm cache skips Table 5's dominant stages.
    assert speedup >= 5.0
    assert stats["cache"]["hits"] == n
    assert stats["cache"]["misses"] == n
