"""Cluster scaling — does throughput grow with worker processes?

The :mod:`repro.cluster` tier exists for exactly one claim: cold-path
scoring is CPU-bound behind one GIL, so N engine worker *processes*
behind the routing front door should deliver near-linear utt/s until
the host runs out of cores.  This bench drives a saturating load of
*distinct* utterances (every payload gets a fresh ``utt_id``, so the
score caches cannot flatter the numbers) through fleets of increasing
size and reports utt/s, per-request p50/p99 and the response-status
census.

Gates (enforced only when the host has the cores to show scaling —
``len(os.sched_getaffinity(0))``; a 1-core container records the
numbers but cannot assert a ratio):

- workers=2 must reach >= 1.5x the workers=1 utt/s (>= 2 cores);
- workers=4 must reach >= 2.5x (>= 4 cores);
- every response status is in {200, 429, 503} and every request
  completes — nothing hangs, ever.

The chaos variant re-runs the 2-worker fleet with the supervisor-side
``worker`` fault target armed (``error:worker:1``): one worker is
SIGKILLed mid-load, its in-flight requests fail fast with 503, the
supervisor respawns it, and the run still finishes with zero hung
requests.

Results land in ``benchmarks/results/serve_scaling.txt``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.faults.injection import FaultPlan
from repro.serve import export_trained, save_system, utterance_to_json

#: Concurrent closed-loop clients — enough to keep every worker's
#: queue non-empty (saturation) without swamping a small host.
N_CLIENTS = 8

#: Allowed response statuses under load (anything else is a bug).
ALLOWED_STATUSES = {200, 429, 503}

#: Per-request client timeout; a request still pending after this is a
#: hang, which the bench treats as a hard failure.
CLIENT_TIMEOUT_S = 120.0

ENGINE_KWARGS = {"batch_window": 0.005, "cache_entries": 256, "deadline": 60.0}


def _cores() -> int:
    return len(os.sched_getaffinity(0))


def _fleet_sizes() -> list[int]:
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    return [1, 2] if scale == "smoke" else [1, 2, 4]


def _n_requests() -> int:
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    return 48 if scale == "smoke" else 160


@pytest.fixture(scope="module")
def artifact(lab, tmp_path_factory):
    """The lab's baseline system exported to disk once for every fleet."""
    trained = export_trained(lab.system, [lab.baseline()], lab.config)
    directory = tmp_path_factory.mktemp("scaling") / "system"
    save_system(directory, trained, metadata={"origin": "bench_serve_scaling"})
    return directory


@pytest.fixture(scope="module")
def payloads(lab):
    """Distinct single-utterance payloads (fresh ids defeat the caches)."""
    duration = max(lab.durations)
    base = [
        utterance_to_json(u)
        for u in lab.system.corpus_for(f"test@{duration}").utterances
    ]
    out = []
    for i in range(max(_n_requests(), len(base))):
        payload = dict(base[i % len(base)])
        payload["utt_id"] = f"{payload['utt_id']}#scale{i}"
        out.append({"utterances": [payload]})
    return out[: _n_requests()]


def _run_load(url: str, payloads: list[dict]) -> dict:
    """Closed-loop saturating load; returns the census.

    ``N_CLIENTS`` threads drain a shared queue of single-utterance
    requests.  Every request either completes with a status or raises
    on its client timeout — there is no code path that leaves one
    pending, so ``completed == issued`` *is* the zero-hung-requests
    check.
    """
    lock = threading.Lock()
    queue = list(payloads)
    statuses: list[int] = []
    latencies: list[float] = []

    def client() -> None:
        while True:
            with lock:
                if not queue:
                    return
                payload = queue.pop()
            body = json.dumps(payload).encode()
            request = urllib.request.Request(
                url + "/score",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            t0 = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    request, timeout=CLIENT_TIMEOUT_S
                ) as response:
                    status = response.status
                    response.read()
            except urllib.error.HTTPError as exc:
                status = exc.code
                exc.read()
            except (urllib.error.URLError, OSError):
                status = -1  # transport failure: recorded, never allowed
            elapsed = time.perf_counter() - t0
            with lock:
                statuses.append(status)
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client, daemon=True) for _ in range(N_CLIENTS)
    ]
    wall0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=CLIENT_TIMEOUT_S * 2)
    wall = time.perf_counter() - wall0
    hung = sum(thread.is_alive() for thread in threads)
    ok = [s for s in statuses if s == 200]
    ok_latencies = [
        lat for s, lat in zip(statuses, latencies) if s == 200
    ]
    return {
        "wall_s": wall,
        "issued": len(payloads),
        "completed": len(statuses),
        "hung_clients": hung,
        "statuses": sorted(set(statuses)),
        "ok": len(ok),
        "utt_per_s": len(ok) / wall if wall > 0 else 0.0,
        "p50_ms": (
            float(np.percentile(ok_latencies, 50)) * 1e3 if ok_latencies else None
        ),
        "p99_ms": (
            float(np.percentile(ok_latencies, 99)) * 1e3 if ok_latencies else None
        ),
    }


def _with_cluster(artifact, n_workers: int, fn, *, faults=None):
    supervisor, server = make_cluster(
        artifact,
        n_workers,
        engine_kwargs=ENGINE_KWARGS,
        health_interval=0.1,
        forward_timeout=90.0,
        faults=faults,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        return fn(f"http://{host}:{port}", supervisor)
    finally:
        server.shutdown()
        server.server_close()
        supervisor.stop()
        thread.join(timeout=10)


def test_scaling_workers_1_2_4(artifact, payloads, report, benchmark):
    """utt/s vs fleet size; ratio gates apply when cores permit."""
    cores = _cores()
    census: dict[int, dict] = {}

    def run_all():
        for n in _fleet_sizes():
            census[n] = _with_cluster(
                artifact, n, lambda url, sup: _run_load(url, payloads)
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"Cluster scaling ({_n_requests()} distinct utterances, "
        f"{N_CLIENTS} clients, {cores} cores)",
        "",
        f"{'workers':<10}{'utt/s':>10}{'x vs 1':>10}"
        f"{'p50 ms':>10}{'p99 ms':>10}{'ok':>6}{'other':>7}",
    ]
    base = census[min(census)]["utt_per_s"]
    for n, result in sorted(census.items()):
        ratio = result["utt_per_s"] / base if base else float("nan")
        lines.append(
            f"{n:<10}{result['utt_per_s']:>10.2f}{ratio:>9.2f}x"
            f"{result['p50_ms']:>10.1f}{result['p99_ms']:>10.1f}"
            f"{result['ok']:>6}{result['completed'] - result['ok']:>7}"
        )
        benchmark.extra_info[f"utt_per_s_w{n}"] = result["utt_per_s"]
    if cores < 2:
        lines.append("")
        lines.append(
            f"ratio gates skipped: {cores} core(s) cannot show scaling"
        )
    report("serve_scaling", "\n".join(lines))

    for n, result in census.items():
        assert result["completed"] == result["issued"], (
            f"workers={n}: {result['issued'] - result['completed']} "
            "requests never completed"
        )
        assert result["hung_clients"] == 0
        assert set(result["statuses"]) <= ALLOWED_STATUSES, (
            f"workers={n}: unexpected statuses {result['statuses']}"
        )
        assert result["p99_ms"] is not None

    # Scaling gates, core-count permitting.
    if cores >= 2 and 2 in census:
        assert census[2]["utt_per_s"] >= 1.5 * census[1]["utt_per_s"]
    if cores >= 4 and 4 in census:
        assert census[4]["utt_per_s"] >= 2.5 * census[1]["utt_per_s"]


def test_scaling_chaos_worker_kill(artifact, payloads, report, benchmark):
    """A mid-load worker SIGKILL degrades throughput, never correctness."""

    def run(url: str, supervisor) -> tuple[dict, dict]:
        result = _run_load(url, payloads)
        # The armed fault has fired by now (first health tick); wait for
        # the respawn to land before reading the lifecycle counters.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            described = supervisor.describe()
            if all(info["alive"] for info in described.values()) and any(
                info["generation"] >= 2 for info in described.values()
            ):
                break
            time.sleep(0.2)
        return result, supervisor.describe()

    result, described = benchmark.pedantic(
        lambda: _with_cluster(
            artifact,
            2,
            run,
            faults=FaultPlan.parse("error:worker:1"),
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Cluster chaos (2 workers, error:worker:1 mid-load)",
        "",
        f"issued {result['issued']}  completed {result['completed']}  "
        f"ok {result['ok']}  statuses {result['statuses']}",
        f"utt/s {result['utt_per_s']:.2f}  p99 "
        f"{result['p99_ms']:.1f} ms" if result["p99_ms"] else "no 200s",
        "workers: "
        + "  ".join(
            f"{slot}(gen {info['generation']}, alive {info['alive']})"
            for slot, info in sorted(described.items())
        ),
    ]
    report("serve_scaling_chaos", "\n".join(lines))

    # Zero hung requests: everything issued came back, with an allowed
    # status — a killed worker maps to 503, never to a stuck client.
    assert result["completed"] == result["issued"]
    assert result["hung_clients"] == 0
    assert set(result["statuses"]) <= ALLOWED_STATUSES
    assert result["ok"] > 0  # the surviving worker kept serving
    # The kill actually happened and the supervisor recovered from it.
    assert any(info["generation"] >= 2 for info in described.values())
    assert all(info["alive"] for info in described.values())
