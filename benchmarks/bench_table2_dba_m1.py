"""Table 2 — DBA-M1 EER/C_avg per frontend × duration × threshold V.

Regenerates the paper's Table 2: for every frontend and nominal duration,
baseline EER/C_avg plus the DBA-M1 sweep over V = 6 … 1.  Expected shape
(§5.2): EER first decreases then increases as V drops (an interior
optimum — the paper finds V = 3), and DBA at the best V beats baseline.
"""

from __future__ import annotations

import numpy as np

from _tables import format_dba_table, u_shape_score

from repro.core import trdba_composition, vote_count_matrix

VARIANT = "M1"


def _sweep(lab):
    baseline = lab.baseline()
    baseline_cells = {}
    dba_cells = {}
    for duration in lab.durations:
        for name, cell in lab.frontend_table(baseline, duration).items():
            baseline_cells[(name, duration)] = cell
    for threshold in lab.thresholds:
        result = lab.dba(threshold, VARIANT)
        for duration in lab.durations:
            for name, cell in lab.frontend_table(result, duration).items():
                dba_cells[(name, duration, threshold)] = cell
    return baseline_cells, dba_cells


def test_table2_dba_m1(lab, report, benchmark):
    baseline_cells, dba_cells = benchmark.pedantic(
        _sweep, args=(lab,), rounds=1, iterations=1
    )
    names = [fe.name for fe in lab.system.frontends]
    text = format_dba_table(
        names, lab.durations, lab.thresholds, baseline_cells, dba_cells
    )
    report("table2_dba_m1", text)

    # Shape assertions (aggregated over frontends, per duration):
    u_shapes = []
    for duration in lab.durations:
        base_mean = np.mean(
            [baseline_cells[(n, duration)][0] for n in names]
        )
        sweep_means = [
            np.mean([dba_cells[(n, duration, v)][0] for n in names])
            for v in lab.thresholds
        ]
        # 1. The best threshold beats baseline.
        assert min(sweep_means) < base_mean
        u_shapes.append(u_shape_score(sweep_means))
    # 2. The paper's interior-optimum (U-shape) signature must show
    #    wherever the loose pools are actually noisy.  Our V=1 pools are
    #    cleaner than the paper's (~19 % vs 31.9 % label error), so the
    #    noise-tolerant 30 s sweep may stay monotone: require the U-shape
    #    on a majority of durations (EXPERIMENTS.md discusses this).
    counts = vote_count_matrix(lab.baseline().pooled_test_scores())
    rows = trdba_composition(counts, lab.pooled_labels(), lab.thresholds)
    loosest_error = rows[-1].error_rate
    if np.isfinite(loosest_error) and loosest_error > 0.15:
        assert sum(u_shapes) >= max(1, len(u_shapes) - 1)
