"""Exec-layer resume economics — cold vs warm campaign wall-clock.

The artifact store (:mod:`repro.exec`) claims that a re-run campaign
costs almost nothing: every stage product — φ(x) supervector matrices,
fitted VSMs, score matrices, vote selections, fused scores — reloads
from content-addressed storage instead of recomputing, so the warm pass
skips Table 5's dominant stages (decoding + supervector generation)
entirely.  This bench runs the same campaign twice against one store
with *fresh* systems (empty in-memory caches, so all reuse flows through
the store) and asserts:

- the warm pass performs **zero** φ stage executions and zero ``pmap``
  decode fan-outs (obs metrics);
- warm wall-clock is at least 3x faster than cold at smoke scale
  (decode dominates cold; the warm pass only re-derives table cells from
  loaded score matrices);
- the regenerated tables are bitwise identical.

Results land in ``benchmarks/results/exec_resume.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import bench_scale, build_system, run_campaign, smoke_scale
from repro.exec import ArtifactStore
from repro.obs.metrics import default_registry

#: Sweep a single variant/threshold pair: resume economics are per-stage,
#: so a minimal grid measures the same mechanism in a fraction of the time.
VARIANTS = ("M2",)
FUSION_THRESHOLD = 2


@pytest.fixture(scope="module")
def campaign_config():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    config = smoke_scale() if scale == "smoke" else bench_scale()
    from dataclasses import replace

    return replace(config, vote_thresholds=(FUSION_THRESHOLD,))


def test_exec_resume_cold_vs_warm(
    campaign_config, tmp_path_factory, report, benchmark
):
    """Warm campaign must be >= 3x faster with zero decode executions."""
    registry = default_registry()
    store_dir = tmp_path_factory.mktemp("exec-store")

    def run_once() -> tuple[float, object]:
        system = build_system(
            campaign_config, store=ArtifactStore(store_dir)
        )
        t0 = time.perf_counter()
        result = run_campaign(
            campaign_config,
            system=system,
            variants=VARIANTS,
            fusion_threshold=FUSION_THRESHOLD,
        )
        return time.perf_counter() - t0, result

    def cold_then_warm():
        registry.reset()
        cold_s, cold = run_once()
        cold_phi = registry.counter("exec.stage.phi.executed").value
        registry.reset()
        warm_s, warm = run_once()
        warm_phi = registry.counter("exec.stage.phi.executed").value
        warm_pmap = registry.counter("parallel.pmap.calls").value
        hits = registry.counter("exec.store.hits").value
        assert warm.to_text() == cold.to_text()
        return cold_s, warm_s, cold_phi, warm_phi, warm_pmap, hits

    cold_s, warm_s, cold_phi, warm_phi, warm_pmap, hits = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    speedup = cold_s / warm_s
    lines = [
        "Exec-layer resume (one campaign, cold store vs warm store)",
        "",
        f"{'pass':<12}{'wall s':>10}{'phi runs':>10}",
        f"{'cold':<12}{cold_s:>10.3f}{cold_phi:>10.0f}",
        f"{'warm':<12}{warm_s:>10.3f}{warm_phi:>10.0f}",
        "",
        f"warm/cold speedup: {speedup:.1f}x",
        f"warm store hits {hits:.0f}  warm pmap calls {warm_pmap:.0f}",
    ]
    report("exec_resume", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    # The acceptance bar: resuming skips every decode/φ stage …
    assert cold_phi > 0 and warm_phi == 0
    assert warm_pmap == 0
    assert hits > 0
    # … which is where the wall-clock lives.
    assert speedup >= 3.0
