"""Exec-layer resume economics — cold vs warm campaign wall-clock.

The artifact store (:mod:`repro.exec`) claims that a re-run campaign
costs almost nothing: every stage product — φ(x) supervector matrices,
fitted VSMs, score matrices, vote selections, fused scores — reloads
from content-addressed storage instead of recomputing, so the warm pass
skips Table 5's dominant stages (decoding + supervector generation)
entirely.  This bench runs the same campaign twice against one store
with *fresh* systems (empty in-memory caches, so all reuse flows through
the store) and asserts:

- the warm pass performs **zero** φ stage executions and zero ``pmap``
  decode fan-outs (obs metrics);
- warm wall-clock is at least 3x faster than cold at smoke scale
  (decode dominates cold; the warm pass only re-derives table cells from
  loaded score matrices);
- the regenerated tables are bitwise identical.

A second gate targets the *cold* pass itself: the batched decode +
sparse-φ fast path must beat the seed reference implementations
(selected with ``REPRO_PHI_REFERENCE=1``) by at least 5x on a cold
campaign, while regenerating bitwise-identical tables — the fast path
is pure speed, never a numbers change.

Results land in ``benchmarks/results/exec_resume.txt`` and
``benchmarks/results/exec_phi_fastpath.txt``.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from _tables import tables_match

from repro.core import bench_scale, build_system, run_campaign, smoke_scale
from repro.exec import ArtifactStore
from repro.obs.metrics import default_registry

#: Sweep a single variant/threshold pair: resume economics are per-stage,
#: so a minimal grid measures the same mechanism in a fraction of the time.
VARIANTS = ("M2",)
FUSION_THRESHOLD = 2


@pytest.fixture(scope="module")
def campaign_config():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    config = smoke_scale() if scale == "smoke" else bench_scale()
    from dataclasses import replace

    return replace(config, vote_thresholds=(FUSION_THRESHOLD,))


def test_exec_resume_cold_vs_warm(
    campaign_config, tmp_path_factory, report, benchmark
):
    """Warm campaign must be >= 3x faster with zero decode executions."""
    registry = default_registry()
    store_dir = tmp_path_factory.mktemp("exec-store")

    def run_once() -> tuple[float, object]:
        system = build_system(
            campaign_config, store=ArtifactStore(store_dir)
        )
        t0 = time.perf_counter()
        result = run_campaign(
            campaign_config,
            system=system,
            variants=VARIANTS,
            fusion_threshold=FUSION_THRESHOLD,
        )
        return time.perf_counter() - t0, result

    def cold_then_warm():
        registry.reset()
        cold_s, cold = run_once()
        cold_phi = registry.counter("exec.stage.phi.executed").value
        registry.reset()
        warm_s, warm = run_once()
        warm_phi = registry.counter("exec.stage.phi.executed").value
        warm_pmap = registry.counter("parallel.pmap.calls").value
        hits = registry.counter("exec.store.hits").value
        assert warm.to_text() == cold.to_text()
        return cold_s, warm_s, cold_phi, warm_phi, warm_pmap, hits

    cold_s, warm_s, cold_phi, warm_phi, warm_pmap, hits = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    speedup = cold_s / warm_s
    lines = [
        "Exec-layer resume (one campaign, cold store vs warm store)",
        "",
        f"{'pass':<12}{'wall s':>10}{'phi runs':>10}",
        f"{'cold':<12}{cold_s:>10.3f}{cold_phi:>10.0f}",
        f"{'warm':<12}{warm_s:>10.3f}{warm_phi:>10.0f}",
        "",
        f"warm/cold speedup: {speedup:.1f}x",
        f"warm store hits {hits:.0f}  warm pmap calls {warm_pmap:.0f}",
    ]
    report("exec_resume", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    # The acceptance bar: resuming skips every decode/φ stage …
    assert cold_phi > 0 and warm_phi == 0
    assert warm_pmap == 0
    assert hits > 0
    # … which is where the wall-clock lives.
    assert speedup >= 3.0


def test_cold_campaign_fast_vs_reference(
    campaign_config, tmp_path_factory, report, benchmark, monkeypatch
):
    """Batched decode + sparse φ must be >= 5x faster than the seed path.

    ``REPRO_PHI_REFERENCE=1`` selects the original per-slot/per-window
    reference implementations throughout the φ pipeline (confusion
    decode, expected-count accumulation, supervector assembly, TFLLR
    scaling) — the seed decode path this PR replaced.  Both passes run
    *cold* against their own store, so the comparison is pure compute,
    not cache economics.  The fast path is contractually bitwise in
    float64, so the regenerated tables must be identical — checked with
    the zero-tolerance default of :func:`tables_match`.

    The fast pass runs twice and takes the best wall-clock: at a few
    seconds per pass a single round is within scheduler-jitter range of
    the gate, while the reference pass is long enough to self-average.
    Garbage is collected before every timed pass so no pass pays for a
    predecessor's allocations.
    """
    registry = default_registry()

    def run_cold(tag: str, reference: bool) -> tuple[float, object, float]:
        if reference:
            monkeypatch.setenv("REPRO_PHI_REFERENCE", "1")
        else:
            monkeypatch.delenv("REPRO_PHI_REFERENCE", raising=False)
        registry.reset()
        system = build_system(
            campaign_config,
            store=ArtifactStore(tmp_path_factory.mktemp(f"phi-{tag}")),
        )
        gc.collect()
        t0 = time.perf_counter()
        result = run_campaign(
            campaign_config,
            system=system,
            variants=VARIANTS,
            fusion_threshold=FUSION_THRESHOLD,
        )
        elapsed = time.perf_counter() - t0
        return elapsed, result, registry.counter("exec.stage.phi.executed").value

    def fast_then_reference():
        fast_s1, fast, fast_phi = run_cold("fast1", False)
        fast_s2, fast2, fast_phi2 = run_cold("fast2", False)
        ref_s, ref, ref_phi = run_cold("reference", True)
        # Every pass is cold: every φ stage actually executed.
        assert ref_phi > 0 and fast_phi == ref_phi and fast_phi2 == ref_phi
        # Zero tolerance: float64 tables must be bitwise identical —
        # across the two fast rounds and against the reference path.
        assert tables_match(fast2.to_text(), fast.to_text())
        assert tables_match(fast.to_text(), ref.to_text())
        return ref_s, min(fast_s1, fast_s2), ref_phi

    ref_s, fast_s, phi_runs = benchmark.pedantic(
        fast_then_reference, rounds=1, iterations=1
    )
    speedup = ref_s / fast_s
    lines = [
        "φ fast path (batched decode + sparse n-gram) vs seed reference",
        "",
        f"{'pass':<12}{'wall s':>10}{'phi runs':>10}",
        f"{'reference':<12}{ref_s:>10.3f}{phi_runs:>10.0f}",
        f"{'fast':<12}{fast_s:>10.3f}{phi_runs:>10.0f}",
        "",
        f"fast-path speedup: {speedup:.1f}x  (gate: >= 5x, tables bitwise)",
    ]
    report("exec_phi_fastpath", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0
