"""Ablation — one boosting round (the paper) versus iterated DBA.

The paper runs a single retrain pass (§3 f repeats steps a-c once).  A
natural extension is to iterate: re-vote with the boosted subsystems,
re-select, re-train.  This bench runs up to three rounds of DBA-M2 at
V = 3 and reports the mean single-frontend EER per round — measuring
whether extra rounds keep paying or saturate/degrade (self-training
feedback loops amplify their own mistakes).
"""

from __future__ import annotations

import numpy as np

from repro.core import select_pseudo_labels, vote_count_matrix
from repro.core.dba import build_dba_training_set
from repro.core.pipeline import calibrate_scores, evaluate_scores
from repro.svm.vsm import VSM

THRESHOLD = 3
ROUNDS = 3


def _round_metrics(lab, pooled_scores, duration, round_idx):
    """Retrain all subsystems from pooled votes; return metrics + scores."""
    system = lab.system
    y_train = system.labels_for("train")
    counts = vote_count_matrix(pooled_scores)
    pseudo = select_pseudo_labels(counts, THRESHOLD)
    new_pooled = []
    eers = []
    for q, frontend in enumerate(system.frontends):
        x_train = system.raw_matrix(frontend, "train")
        x_pool = system.pooled_test_matrix(frontend)
        x_dba, y_dba = build_dba_training_set(
            "M2", x_train, y_train, x_pool, pseudo
        )
        vsm = VSM(
            len(frontend.phone_set),
            len(system.bundle.registry),
            orders=system.system.orders,
            max_epochs=system.system.svm_max_epochs,
            seed=system.system.seed + 700 + 10 * round_idx + q,
        )
        vsm.fit_matrix(x_dba, y_dba)
        new_pooled.append(vsm.score_matrix(x_pool))
        dev = vsm.score_matrix(system.raw_matrix(frontend, "dev"))
        test = vsm.score_matrix(
            system.raw_matrix(frontend, f"test@{duration}")
        )
        calibrated = calibrate_scores(
            [dev], system.labels_for("dev"), [test], system=system.system
        )
        eer, _ = evaluate_scores(
            calibrated, system.labels_for(f"test@{duration}")
        )
        eers.append(eer)
    return float(np.mean(eers)), new_pooled, pseudo


def test_ablation_iterated_boosting(lab, report, benchmark):
    duration = min(lab.durations)
    baseline = lab.baseline()
    truth = lab.pooled_labels()

    def run():
        pooled = baseline.pooled_test_scores()
        base_mean = float(
            np.mean(
                [e for e, _ in lab.frontend_table(baseline, duration).values()]
            )
        )
        history = [("round0 (baseline)", base_mean, None, None)]
        for round_idx in range(1, ROUNDS + 1):
            mean_eer, pooled, pseudo = _round_metrics(
                lab, pooled, duration, round_idx
            )
            history.append(
                (
                    f"round{round_idx}",
                    mean_eer,
                    len(pseudo),
                    pseudo.error_rate(truth),
                )
            )
        return history

    history = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'round':<20}{'mean EER %':>11}{'pool':>7}{'pool err':>10}"]
    for name, eer, pool, err in history:
        pool_s = f"{pool:>7d}" if pool is not None else f"{'—':>7}"
        err_s = f"{100 * err:>9.2f}%" if err is not None else f"{'—':>10}"
        lines.append(f"{name:<20}{eer:>10.2f} {pool_s}{err_s}")
    report("ablation_iterations", "\n".join(lines))

    # Round 1 (the paper's DBA) must improve on the baseline.
    assert history[1][1] < history[0][1]
    # Further rounds must not catastrophically degrade (< 2 % abs).
    assert history[-1][1] < history[0][1] + 2.0
