"""Thin shim: table layouts live in :mod:`repro.core.reporting`."""

from repro.core.reporting import (  # noqa: F401
    AM_FAMILY,
    format_dba_table,
    format_duration,
    format_table4,
    has_interior_minimum,
    tables_match,
)

# Backwards-compatible alias used by the bench modules.
u_shape_score = has_interior_minimum
