"""Table 3 — DBA-M2 EER/C_avg per frontend × duration × threshold V.

Same layout as Table 2 for the M2 variant (pseudo-labelled test data plus
the original training set).  Expected shapes (§5.2): interior optimum in
V; best-V beats baseline; and versus Table 2, M2 is the stronger variant
on long (30 s) utterances, where training-data volume matters most.
"""

from __future__ import annotations

import numpy as np

from _tables import format_dba_table, u_shape_score

from repro.core import trdba_composition, vote_count_matrix

VARIANT = "M2"


def _sweep(lab):
    baseline = lab.baseline()
    baseline_cells = {}
    dba_cells = {}
    for duration in lab.durations:
        for name, cell in lab.frontend_table(baseline, duration).items():
            baseline_cells[(name, duration)] = cell
    for threshold in lab.thresholds:
        result = lab.dba(threshold, VARIANT)
        for duration in lab.durations:
            for name, cell in lab.frontend_table(result, duration).items():
                dba_cells[(name, duration, threshold)] = cell
    return baseline_cells, dba_cells


def test_table3_dba_m2(lab, report, benchmark):
    baseline_cells, dba_cells = benchmark.pedantic(
        _sweep, args=(lab,), rounds=1, iterations=1
    )
    names = [fe.name for fe in lab.system.frontends]
    text = format_dba_table(
        names, lab.durations, lab.thresholds, baseline_cells, dba_cells
    )
    report("table3_dba_m2", text)

    u_shapes = []
    for duration in lab.durations:
        base_mean = np.mean(
            [baseline_cells[(n, duration)][0] for n in names]
        )
        sweep_means = [
            np.mean([dba_cells[(n, duration, v)][0] for n in names])
            for v in lab.thresholds
        ]
        assert min(sweep_means) < base_mean
        u_shapes.append(u_shape_score(sweep_means))
    # The paper's interior-optimum signature must show wherever the loose
    # pools are actually noisy.  Our V=1 pools are cleaner than the
    # paper's (≈19 % vs 31.9 % label error), so the noise-tolerant 30 s
    # sweep may stay monotone: require the U-shape on a majority of
    # durations rather than every one (EXPERIMENTS.md discusses this).
    counts = vote_count_matrix(lab.baseline().pooled_test_scores())
    rows = trdba_composition(counts, lab.pooled_labels(), lab.thresholds)
    loosest_error = rows[-1].error_rate
    if np.isfinite(loosest_error) and loosest_error > 0.15:
        assert sum(u_shapes) >= max(1, len(u_shapes) - 1)


def test_table3_m2_stronger_than_m1_at_long_duration(lab, report, benchmark):
    """Paper §5.2: DBA-M2 outperforms DBA-M1 at 30 s."""
    longest = max(lab.durations)
    names = [fe.name for fe in lab.system.frontends]
    threshold = 3

    def compare():
        m1 = lab.frontend_table(lab.dba(threshold, "M1"), longest)
        m2 = lab.frontend_table(lab.dba(threshold, "M2"), longest)
        return m1, m2

    m1, m2 = benchmark.pedantic(compare, rounds=1, iterations=1)
    mean_m1 = np.mean([m1[n][0] for n in names])
    mean_m2 = np.mean([m2[n][0] for n in names])
    report(
        "table3_m1_vs_m2",
        f"mean EER at {longest}s, V={threshold}: "
        f"M1 {mean_m1:.2f} %  M2 {mean_m2:.2f} %",
    )
    assert mean_m2 <= mean_m1 + 0.3
