"""Shared benchmark laboratory.

Builds the bench-scale corpus + frontend battery once per pytest session,
computes the PPRVSM baseline once, and lazily caches each DBA pass
(threshold × variant) so that every table/figure benchmark reuses the
same underlying runs — mirroring how the paper's tables all come from one
evaluation campaign.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``"bench"`` (default; minutes) or ``"smoke"`` (seconds, for CI sanity).
Every regenerated table is printed to the terminal (bypassing capture)
and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    DBAResult,
    PhonotacticSystem,
    bench_scale,
    build_system,
    smoke_scale,
)
from repro.utils.timing import StageTimer

RESULTS_DIR = Path(__file__).parent / "results"


class BenchLab:
    """Cache of baseline/DBA runs shared by all table benchmarks."""

    def __init__(self) -> None:
        scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
        config = smoke_scale() if scale == "smoke" else bench_scale()
        self.config = config
        self.timer = StageTimer()
        self.system: PhonotacticSystem = build_system(config, timer=self.timer)
        self._baseline = None
        self._dba: dict[tuple[int, str], DBAResult] = {}

    @property
    def durations(self) -> tuple[float, ...]:
        return self.system.durations

    @property
    def thresholds(self) -> tuple[int, ...]:
        return self.config.vote_thresholds

    def baseline(self):
        if self._baseline is None:
            self._baseline = self.system.baseline()
        return self._baseline

    def dba(self, threshold: int, variant: str) -> DBAResult:
        key = (threshold, variant)
        if key not in self._dba:
            self._dba[key] = self.system.dba(
                threshold, variant, self.baseline()
            )
        return self._dba[key]

    def frontend_table(self, result, duration: float) -> dict[str, tuple[float, float]]:
        return self.system.frontend_metrics(result, duration)

    def pooled_labels(self) -> np.ndarray:
        return self.system.pooled_test_labels()


@pytest.fixture(scope="session")
def lab() -> BenchLab:
    return BenchLab()


@pytest.fixture()
def report(capsys):
    """Print a regenerated table to the live terminal and save it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _report
