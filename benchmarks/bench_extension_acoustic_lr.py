"""Extension — acoustic (GMM-UBM + SDC) vs phonotactic LR, side by side.

The paper's introduction positions PPRVSM against "acoustic LR systems
[3]" (Torres-Carrasquillo et al. 2002: GMMs over shifted delta cepstra).
This bench trains that comparator on the identical corpus and calibrates
its scores through the same LDA-MMI backend, then reports EER per
duration next to the phonotactic baseline and its fusion.

Expected shape *in this synthetic world*: the acoustic system beats
chance but loses decisively to the phonotactic stack — by construction,
the corpus realises language identity purely phonotactically (phone
means are language-independent), so the GMM-UBM can only exploit
phone-frequency statistics smeared into frame space.
"""

from __future__ import annotations

import numpy as np

from repro.acoustic_lr import AcousticLanguageRecognizer
from repro.core.pipeline import calibrate_scores, evaluate_scores


def test_extension_acoustic_vs_phonotactic(lab, report, benchmark):
    system = lab.system
    baseline = lab.baseline()
    k = len(system.bundle.registry)

    def run():
        recognizer = AcousticLanguageRecognizer(
            system.bundle.acoustics,
            system.bundle.language_names,
            n_components=32,
            seed=11,
        )
        recognizer.train(system.bundle.train)
        dev_scores = recognizer.score_corpus(system.bundle.dev)
        rows = {}
        for duration in lab.durations:
            test_corpus = system.corpus_for(f"test@{duration}")
            test_scores = recognizer.score_corpus(test_corpus)
            calibrated = calibrate_scores(
                [dev_scores],
                system.labels_for("dev"),
                [test_scores],
                system=system.system,
            )
            acoustic = evaluate_scores(
                calibrated, system.labels_for(f"test@{duration}")
            )
            phonotactic = lab.frontend_table(baseline, duration)
            fused = system.fused_metrics([baseline], duration)
            rows[duration] = (
                acoustic,
                float(np.mean([e for e, _ in phonotactic.values()])),
                fused,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'dur':<6}{'acoustic GMM-UBM':>18}{'phonotactic mean':>18}"
        f"{'phonotactic fused':>19}"
    ]
    for duration, (acoustic, phono_mean, fused) in rows.items():
        lines.append(
            f"{int(duration):>4}s{acoustic[0]:>15.2f} %"
            f"{phono_mean:>15.2f} %{fused[0]:>16.2f} %"
        )
    lines.append(
        "\n(EER %; the synthetic corpus carries language identity only"
        "\n phonotactically, so the acoustic comparator trails by design)"
    )
    report("extension_acoustic_lr", "\n".join(lines))

    chance = 100.0 * (1.0 - 1.0 / k)
    for duration, (acoustic, phono_mean, fused) in rows.items():
        # Acoustic LR is a working system: better than random scoring...
        assert acoustic[0] < 50.0
        # ...but the phonotactic stack dominates it on this corpus.
        assert fused[0] < acoustic[0]
        assert phono_mean < acoustic[0] + 5.0
        assert acoustic[0] < chance
