"""Distributed campaign gate: leased workers vs one process, plus chaos.

Two drills over the :mod:`repro.dist` work-queue tier:

1. **Distribution changes nothing but wall time.**  A campaign run by
   ``WORKERS`` leased worker processes over one
   :class:`~repro.exec.store.ArtifactStore` must produce tables
   **bitwise identical** (:func:`~repro.core.reporting.tables_match`
   with zero tolerance) to the single-process run, with every worker
   finishing and the stage claims actually partitioned (non-zero
   ``dist.claims`` *and* ``dist.waits``).  The wall-clock *speedup*
   half of the gate is asserted only where the parallelism it measures
   physically exists — bench scale (stage compute ≫ per-worker spawn +
   corpus-build overhead) on a host with at least ``WORKERS`` cores;
   smoke CI still runs the full drill and reports both timings.

2. **A SIGKILLed worker's stages are re-claimed.**  With
   ``error:worker-kill:1`` armed, the fleet monitor SIGKILLs one
   worker that *holds a stage lease* mid-campaign.  The survivors must
   detect the expired lease, steal the stage, and still publish
   bitwise-identical tables — and the runlog manifest must carry
   ``dist.lease_expirations >= 1`` as the proof the drill exercised
   the re-claim path rather than killing an idle process.

Results land in ``benchmarks/results/exec_dist*.txt``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace

import pytest

from repro.core import bench_scale, run_campaign, smoke_scale
from repro.core.reporting import tables_match
from repro.dist import DistributedCampaign
from repro.faults.injection import ENV_VAR, FaultPlan, reset_ambient_plan
from repro.obs import trace, write_runlog
from repro.obs.metrics import default_registry

VARIANTS = ("M1", "M2")
FUSION_THRESHOLD = 2
WORKERS = 4

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")

#: The wall-clock gate needs real parallelism: one core per worker and
#: enough stage compute to amortize each worker's interpreter spawn +
#: corpus/frontend build (seconds).  Smoke scale on a small CI box
#: still proves the correctness contract; it just cannot prove speedup.
SPEEDUP_GATE = _SCALE != "smoke" and (os.cpu_count() or 1) >= WORKERS


@pytest.fixture(scope="module")
def dist_config():
    config = smoke_scale() if _SCALE == "smoke" else bench_scale()
    return replace(config, vote_thresholds=(FUSION_THRESHOLD,))


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_ambient_plan()
    yield
    reset_ambient_plan()


@pytest.fixture(scope="module")
def single_run(dist_config):
    """The single-process reference: wall seconds + rendered tables."""
    t0 = time.perf_counter()
    result = run_campaign(
        dist_config, variants=VARIANTS, fusion_threshold=FUSION_THRESHOLD
    )
    return time.perf_counter() - t0, result.to_text()


def test_distributed_campaign_speedup_and_bitwise_tables(
    dist_config, single_run, report, benchmark, tmp_path_factory
):
    """N leased workers: identical bytes, partitioned work, speedup."""
    single_s, reference = single_run
    store = tmp_path_factory.mktemp("dist-store")
    default_registry().reset()

    def distributed():
        return DistributedCampaign(
            dist_config,
            store=store,
            workers=WORKERS,
            variants=VARIANTS,
            fusion_threshold=FUSION_THRESHOLD,
        ).run(join_timeout=1800)

    outcome = benchmark.pedantic(distributed, rounds=1, iterations=1)
    identical = tables_match(reference, outcome.tables, atol=0.0, rtol=0.0)
    speedup = single_s / outcome.wall_s
    lines = [
        f"Distributed campaign: {WORKERS} leased workers over one store",
        f"scale: {_SCALE}  (speedup gate "
        f"{'armed' if SPEEDUP_GATE else 'reporting only'}, "
        f"{os.cpu_count()} cores)",
        "",
        f"{'run':<16}{'wall s':>10}",
        f"{'1 process':<16}{single_s:>10.2f}",
        f"{f'{WORKERS} workers':<16}{outcome.wall_s:>10.2f}",
        "",
        f"speedup: {speedup:.2f}x",
        f"tables bitwise identical: {identical}",
        f"workers finished: {len(outcome.workers_done)}/{WORKERS}",
        f"dist.claims: {outcome.metrics['dist.claims']:.0f}  "
        f"dist.waits: {outcome.metrics['dist.waits']:.0f}",
    ]
    report("exec_dist_speedup", "\n".join(lines))
    benchmark.extra_info["speedup"] = speedup
    # The determinism contract is unconditional: distribution may only
    # ever change wall time, never a byte of the tables.
    assert identical
    assert outcome.tables == reference
    assert len(outcome.workers_done) == WORKERS
    assert outcome.workers_failed == ()
    # The work was actually partitioned, not computed N times over.
    assert outcome.metrics["dist.claims"] > 0
    assert outcome.metrics["dist.waits"] > 0
    if SPEEDUP_GATE:
        assert outcome.wall_s < single_s


def test_sigkill_mid_campaign_reclaims_and_matches(
    dist_config, single_run, report, benchmark, tmp_path_factory
):
    """Chaos drill: kill a lease holder; survivors re-claim, bytes hold."""
    _, reference = single_run
    store = tmp_path_factory.mktemp("dist-chaos-store")  # cold on purpose
    runlog_dir = tmp_path_factory.mktemp("dist-runlog")
    default_registry().reset()

    def chaotic():
        trace.start_trace("dist-chaos-campaign")
        try:
            outcome = DistributedCampaign(
                dist_config,
                store=store,
                workers=WORKERS,
                variants=VARIANTS,
                fusion_threshold=FUSION_THRESHOLD,
                lease_ttl=2.0,
                faults=FaultPlan.parse("error:worker-kill:1"),
            ).run(join_timeout=1800)
        finally:
            root = trace.stop_trace()
        manifest = write_runlog(
            runlog_dir / "run", root, metrics=default_registry().snapshot()
        )
        return outcome, manifest

    outcome, manifest = benchmark.pedantic(chaotic, rounds=1, iterations=1)
    identical = tables_match(reference, outcome.tables, atol=0.0, rtol=0.0)
    lines = [
        f"Chaos drill: SIGKILL one lease-holding worker of {WORKERS}",
        "fault spec: error:worker-kill:1  (lease ttl 2s)",
        "",
        f"campaign finished in {outcome.wall_s:.2f}s on "
        f"{len(outcome.workers_done)} survivors",
        f"chaos kills: {outcome.metrics['dist.chaos_kills']:.0f}  "
        f"lease expirations: "
        f"{outcome.metrics['dist.lease_expirations']:.0f}  "
        f"steals: {outcome.metrics['dist.steals']:.0f}",
        f"tables bitwise identical: {identical}",
        f"runlog manifest: {manifest}",
    ]
    report("exec_dist_chaos", "\n".join(lines))
    # Exactly one worker was killed; everyone else finished.
    assert outcome.metrics["dist.chaos_kills"] == 1
    assert len(outcome.workers_done) == WORKERS - 1
    # The victim held a lease, so its death MUST surface as an expiry
    # that a survivor stole — the whole point of the drill.
    assert outcome.metrics["dist.lease_expirations"] >= 1
    assert outcome.metrics["dist.steals"] >= 1
    # And the re-claimed stages changed nothing: bytes still match.
    assert identical
    assert outcome.tables == reference
    # The runlog carries the evidence for post-mortems.
    recorded = json.loads((manifest / "manifest.json").read_text())
    assert recorded["metrics"]["dist.lease_expirations"]["value"] >= 1
