"""Ablation — backend composition: LDA/MMI variants, logistic fusion, TFLLR.

Two design decisions DESIGN.md calls out:

1. the reproduction disables LDA whitening by default (the paper's dev set
   is ~200x larger; at reduced scale the within-class scatter estimate is
   too noisy to whiten against) — this bench measures that choice;
2. the TFLLR kernel map (Eq. 5) versus raw probability supervectors.
"""

from __future__ import annotations

import numpy as np

from repro.backend.fusion import LdaMmiFusion, stack_scores
from repro.backend.logistic import LogisticFusion
from repro.core.pipeline import evaluate_scores
from repro.svm.vsm import VSM


def test_ablation_lda_mmi(lab, report, benchmark):
    duration = min(lab.durations)
    baseline = lab.baseline()
    dev_labels = lab.system.labels_for("dev")
    test_labels = lab.system.labels_for(f"test@{duration}")
    dev = baseline.dev_scores
    test = baseline.test_scores(duration)

    def run():
        rows = {}
        for use_lda in (False, True):
            for mmi in (0, 40):
                fusion = LdaMmiFusion(use_lda=use_lda, mmi_iterations=mmi)
                fused = fusion.fit_transform(dev, dev_labels, test)
                rows[(use_lda, mmi)] = evaluate_scores(fused, test_labels)
        # The FoCal-style alternative: logistic regression over the stack.
        lf = LogisticFusion().fit(
            stack_scores(dev), dev_labels,
            n_classes=len(lab.system.bundle.registry),
        )
        rows["logistic"] = evaluate_scores(
            lf.detection_scores(stack_scores(test)), test_labels
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'backend':<16}{'EER %':>8}{'Cavg %':>8}"]
    for key, (eer, c_avg) in rows.items():
        label = (
            "logistic"
            if key == "logistic"
            else f"LDA={key[0]} MMI={key[1]}"
        )
        lines.append(f"{label:<16}{eer:>8.2f}{c_avg:>8.2f}")
    report("ablation_backend", "\n".join(lines))
    # Logistic fusion must be competitive with the Gaussian default.
    assert rows["logistic"][0] <= rows[(False, 40)][0] + 3.0

    # The documented default (no LDA) must not lose to LDA at this scale.
    grid = {k: v for k, v in rows.items() if isinstance(k, tuple)}
    best_no_lda = min(eer for (lda, _), (eer, _) in grid.items() if not lda)
    best_lda = min(eer for (lda, _), (eer, _) in grid.items() if lda)
    assert best_no_lda <= best_lda + 0.5
    # MMI (I-smoothed) must not hurt materially.
    assert rows[(False, 40)][0] <= rows[(False, 0)][0] + 1.0


def test_ablation_tfllr(lab, report, benchmark):
    duration = min(lab.durations)
    system = lab.system
    frontend = system.frontends[0]
    y_train = system.labels_for("train")

    def run():
        rows = {}
        for tfllr in (True, False):
            vsm = VSM(
                len(frontend.phone_set),
                len(system.bundle.registry),
                orders=system.system.orders,
                max_epochs=system.system.svm_max_epochs,
                tfllr=tfllr,
                seed=system.system.seed + 900,
            )
            vsm.fit_matrix(system.raw_matrix(frontend, "train"), y_train)
            from repro.core.pipeline import calibrate_scores

            dev = vsm.score_matrix(system.raw_matrix(frontend, "dev"))
            test = vsm.score_matrix(
                system.raw_matrix(frontend, f"test@{duration}")
            )
            calibrated = calibrate_scores(
                [dev],
                system.labels_for("dev"),
                [test],
                system=system.system,
            )
            rows[tfllr] = evaluate_scores(
                calibrated, system.labels_for(f"test@{duration}")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_tfllr",
        f"{frontend.name} @ {int(duration)}s:  "
        f"TFLLR on: EER {rows[True][0]:.2f} %   "
        f"TFLLR off: EER {rows[False][0]:.2f} %",
    )
    # Eq. 5 scaling should help (or at worst be neutral).
    assert rows[True][0] <= rows[False][0] + 1.0
