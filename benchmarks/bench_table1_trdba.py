"""Table 1 — composition of Tr_DBA versus vote threshold V (paper §5.1).

Regenerates the paper's row pair (pool size, pseudo-label error rate) for
V = 6 … 1 from the six subsystems' pooled baseline test scores.  Expected
shape: the pool shrinks and its error rate falls as V rises.
"""

from __future__ import annotations

import numpy as np

from repro.core import trdba_composition, vote_count_matrix
from repro.core.analysis import format_table1


def test_table1_trdba_composition(lab, report, benchmark):
    baseline = lab.baseline()

    def regenerate():
        counts = vote_count_matrix(baseline.pooled_test_scores())
        return trdba_composition(counts, lab.pooled_labels(), lab.thresholds)

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    text = format_table1(rows)
    report("table1_trdba", text)

    sizes = [r.n_selected for r in rows]         # ordered V = 6 .. 1
    errors = [r.error_rate for r in rows if np.isfinite(r.error_rate)]
    # Paper shape: pool grows monotonically as V decreases...
    assert sizes == sorted(sizes)
    # ...and the loosest pool is dirtier than the strictest non-empty one.
    if len(errors) >= 2:
        assert errors[-1] >= errors[0] - 1e-9
