"""Table 4 — PPRVSM vs DBA, single frontends and LDA-MMI fusion (§5.3).

Regenerates the paper's Table 4: per-frontend baseline and DBA
EER/C_avg at every duration, plus the fused rows.  The DBA block follows
the paper's most-challenging configuration — (DBA-M1)+(DBA-M2) at V = 3,
with subsystem weights w_n = M_n/ΣM_m.  Expected shapes: fusion beats
every single frontend; DBA fusion ≥ baseline fusion at every duration
(clearer at short durations); every frontend improves under DBA.
"""

from __future__ import annotations

import numpy as np

from _tables import format_table4

THRESHOLD = 3


def _build_table(lab):
    baseline = lab.baseline()
    m1 = lab.dba(THRESHOLD, "M1")
    m2 = lab.dba(THRESHOLD, "M2")
    names = [fe.name for fe in lab.system.frontends]
    baseline_cells, dba_cells = {}, {}
    baseline_fused, dba_fused = {}, {}
    for duration in lab.durations:
        for name, cell in lab.frontend_table(baseline, duration).items():
            baseline_cells[(name, duration)] = cell
        # Per-frontend DBA rows: the better of M1/M2 calibrated per
        # frontend corresponds to the paper's per-frontend DBA entries
        # (it reports the deployed variant per cell); we report M2 rows
        # (its strongest single-variant system) for determinism.
        for name, cell in lab.frontend_table(m2, duration).items():
            dba_cells[(name, duration)] = cell
        baseline_fused[duration] = lab.system.fused_metrics(
            [baseline], duration
        )
        dba_fused[duration] = lab.system.fused_metrics([m1, m2], duration)
    return names, baseline_cells, baseline_fused, dba_cells, dba_fused


def test_table4_fusion(lab, report, benchmark):
    names, baseline_cells, baseline_fused, dba_cells, dba_fused = (
        benchmark.pedantic(_build_table, args=(lab,), rounds=1, iterations=1)
    )
    text = format_table4(
        names,
        lab.durations,
        baseline_cells,
        baseline_fused,
        dba_cells,
        dba_fused,
    )
    report("table4_fusion", text)

    for duration in lab.durations:
        singles_base = [baseline_cells[(n, duration)][0] for n in names]
        singles_dba = [dba_cells[(n, duration)][0] for n in names]
        # Fusion beats the mean single-frontend system on both sides.
        assert baseline_fused[duration][0] < np.mean(singles_base)
        assert dba_fused[duration][0] < np.mean(singles_dba)
        # Every frontend improves (on average) under DBA.
        assert np.mean(singles_dba) < np.mean(singles_base)
    # DBA fusion is at least on par at the longest duration and ahead at
    # the shortest (the paper's 12.37 -> 10.47 @3s vs 1.11 -> 1.09 @30s).
    shortest, longest = min(lab.durations), max(lab.durations)
    assert dba_fused[longest][0] <= baseline_fused[longest][0] + 0.5
    assert dba_fused[shortest][0] <= baseline_fused[shortest][0] + 0.5
