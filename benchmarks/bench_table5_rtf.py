"""Table 5 — real-time factors per pipeline stage, PPRVSM vs DBA (§5.5).

The paper reports seconds-of-compute per second-of-speech for decoding,
supervector generation and supervector product on the HU frontend's 30 s
test, and argues (Eqs. 16–19) that DBA's extra modeling/scoring passes are
negligible against decoding, so C_DBA / C_baseline ≈ 1.

This bench times the three stages directly with pytest-benchmark on a
fixed utterance batch, prints the Table 5 layout, and checks the Eq. 19
ratio from the lab's stage-timer ledger.  Absolute values depend on the
host and the reduced frame rate; the *relative* structure is the claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.svm.vsm import VSM
from repro.utils.rng import child_rng
from repro.utils.timing import CostLedger


@pytest.fixture(scope="module")
def hu_setup(lab):
    """HU frontend + its longest-duration test corpus and artifacts."""
    frontend = next(fe for fe in lab.system.frontends if fe.name == "HU")
    duration = max(lab.durations)
    corpus = lab.system.corpus_for(f"test@{duration}")
    batch = corpus.utterances[: min(24, len(corpus))]
    audio = sum(u.duration for u in batch)
    sausages = [frontend.decode(u, child_rng(1, u.utt_id)) for u in batch]
    vsm = VSM(
        len(frontend.phone_set),
        len(lab.system.bundle.registry),
        orders=lab.system.system.orders,
    )
    raw = vsm.extract(sausages)
    vsm.fit_matrix(raw, np.arange(raw.n_rows) % len(lab.system.bundle.registry))
    return frontend, batch, audio, sausages, vsm, raw


def test_table5_decoding_rtf(hu_setup, benchmark):
    frontend, batch, audio, _, _, _ = hu_setup

    def decode_batch():
        return [
            frontend.decode(u, child_rng(2, u.utt_id)) for u in batch
        ]

    benchmark.extra_info["audio_seconds"] = audio
    benchmark.pedantic(decode_batch, rounds=3, iterations=1)


def test_table5_sv_generation_rtf(hu_setup, benchmark):
    _, _, audio, sausages, vsm, _ = hu_setup
    benchmark.extra_info["audio_seconds"] = audio
    benchmark.pedantic(
        lambda: vsm.extract(sausages), rounds=3, iterations=1
    )


def test_table5_sv_product_rtf(hu_setup, benchmark):
    _, _, audio, _, vsm, raw = hu_setup
    benchmark.extra_info["audio_seconds"] = audio
    benchmark.pedantic(lambda: vsm.score_matrix(raw), rounds=5, iterations=1)


def test_table5_report_and_eq19_ratio(lab, hu_setup, report, benchmark):
    """Assemble Table 5 from one timed pass and check Eq. 19."""
    import time

    frontend, batch, audio, sausages, vsm, raw = hu_setup

    def stage_times():
        t0 = time.perf_counter()
        decoded = [frontend.decode(u, child_rng(3, u.utt_id)) for u in batch]
        t1 = time.perf_counter()
        extracted = vsm.extract(decoded)
        t2 = time.perf_counter()
        vsm.score_matrix(extracted)
        t3 = time.perf_counter()
        return t1 - t0, t2 - t1, t3 - t2

    decode_s, svgen_s, svprod_s = benchmark.pedantic(
        stage_times, rounds=1, iterations=1
    )
    rtf = {
        "decoding": decode_s / audio,
        "sv_gen": svgen_s / audio,
        "sv_prod": svprod_s / audio,
    }
    # DBA repeats SV product (two scoring passes) and adds a second
    # modeling pass; its phi work is identical (Eq. 16 vs 17).
    lines = [
        f"{'System':<8}{'Decoding':>12}{'SV gen.':>12}{'SV prod.':>12}",
        f"{'PPRVSM':<8}{rtf['decoding']:>12.2e}{rtf['sv_gen']:>12.2e}"
        f"{rtf['sv_prod']:>12.2e}",
        f"{'DBA':<8}{rtf['decoding']:>12.2e}{2 * rtf['sv_gen']:>12.2e}"
        f"{2 * rtf['sv_prod']:>12.2e}",
    ]
    # Eq. 18/19 check from measured stage times.
    base = CostLedger(phi=decode_s + svgen_s, modeling=0.0, test=svprod_s)
    dba = CostLedger(
        phi=decode_s + svgen_s, modeling=0.0, test=2 * svprod_s
    )
    ratio = dba.ratio_to(base)
    lines.append(f"\nC_DBA / C_baseline (Eq. 18, measured) = {ratio:.3f}")
    report("table5_rtf", "\n".join(lines))

    # Paper shape: decoding dominates; the ratio is ~1.
    assert rtf["decoding"] > rtf["sv_prod"]
    assert ratio < 1.25
