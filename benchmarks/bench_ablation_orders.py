"""Ablation — n-gram order: bigram (default) vs trigram supervectors.

The paper's systems stack orders up to N = 3 at 100 fps.  At this
reproduction's reduced frame rate, utterances carry ~5x fewer phones, and
trigram supervectors become so sparse that one-vs-rest test scores hug
the negative bias: the baseline stays strong (larger feature space), but
the Eq. 13 vote criterion almost never fires and DBA starves.  This bench
quantifies both effects — the reason `SystemConfig.orders` defaults to
(1, 2).
"""

from __future__ import annotations

import numpy as np

from repro.core import select_pseudo_labels, vote_count_matrix
from repro.core.pipeline import calibrate_scores, evaluate_scores
from repro.svm.vsm import VSM

THRESHOLD = 3


def _run_orders(lab, orders, duration):
    """Baseline EER (one frontend) + pooled vote-pool size for `orders`."""
    system = lab.system
    y_train = system.labels_for("train")
    pooled_scores = []
    frontend_eer = None
    for q, frontend in enumerate(system.frontends):
        vsm = VSM(
            len(frontend.phone_set),
            len(system.bundle.registry),
            orders=orders,
            max_epochs=system.system.svm_max_epochs,
            seed=system.system.seed + 300 + q,
        )
        # Extract at the requested orders (bypasses the lab's order cache).
        from repro.utils.rng import child_rng

        def sausages(tag):
            corpus = system.corpus_for(tag)
            return [
                frontend.decode(
                    u, child_rng(system.system.seed, f"decode/{frontend.name}/{u.utt_id}")
                )
                for u in corpus
            ]

        x_train = vsm.extract(sausages("train"))
        vsm.fit_matrix(x_train, y_train)
        pool = []
        for d in lab.durations:
            pool.append(vsm.score_matrix(vsm.extract(sausages(f"test@{d}"))))
        pooled_scores.append(np.vstack(pool))
        if q == 0:
            dev = vsm.score_matrix(vsm.extract(sausages("dev")))
            test = pool[list(lab.durations).index(duration)]
            calibrated = calibrate_scores(
                [dev], system.labels_for("dev"), [test], system=system.system
            )
            frontend_eer, _ = evaluate_scores(
                calibrated, system.labels_for(f"test@{duration}")
            )
    counts = vote_count_matrix(pooled_scores)
    pseudo = select_pseudo_labels(counts, THRESHOLD)
    return frontend_eer, len(pseudo), pseudo.error_rate(lab.pooled_labels())


def test_ablation_ngram_orders(lab, report, benchmark):
    duration = max(lab.durations)

    def run():
        return {
            "(1,2)": _run_orders(lab, (1, 2), duration),
            "(1,2,3)": _run_orders(lab, (1, 2, 3), duration),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total = lab.pooled_labels().size
    lines = [
        f"{'orders':<10}{'HU EER %':>10}{'pool@V=3':>10}{'of test':>9}"
        f"{'pool err':>10}"
    ]
    for name, (eer, pool, err) in rows.items():
        err_s = f"{100 * err:>9.2f}%" if np.isfinite(err) else "      n/a"
        lines.append(
            f"{name:<10}{eer:>10.2f}{pool:>10d}{100 * pool / total:>8.1f}%"
            f"{err_s}"
        )
    report("ablation_orders", "\n".join(lines))

    # The documented tradeoff: trigram must starve the vote pool relative
    # to bigram at this scale.
    assert rows["(1,2)"][1] > 2 * rows["(1,2,3)"][1]
